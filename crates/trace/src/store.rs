//! In-memory trace store with JSONL (de)serialization.
//!
//! Messages live in [`MessageColumns`], a structure-of-arrays layout:
//! parallel typed columns for session, GUID, arrival time, hops, TTL,
//! message kind, and wire length, with kind-specific payload side-tables
//! (PONG, QUERY, QUERYHIT) instead of a per-record enum. Analysis passes
//! touch only the columns they need — the filter never drags GUID bytes
//! through the cache, the popularity pass never reads hop counts — and a
//! row costs ~39 bytes of column data plus at most 8 bytes of side-table
//! entry, versus 48 bytes for the old row-oriented `Vec<MessageRecord>`.
//!
//! The public API stays record-shaped: [`MessageColumns::push`] takes a
//! [`MessageRecord`], iteration yields [`MessageRecord`]s by value
//! (everything in a record is `Copy`), and serde round-trips through the
//! record form so the JSONL interchange format is byte-identical to the
//! row-oriented store.

use crate::record::{ConnectionRecord, MessageRecord, RecordedPayload, SessionId};
use crate::stats::TraceStats;
use gnutella::{Guid, QueryId};
use serde::{Deserialize, Serialize};
use simnet::SimTime;
use std::io::{self, BufRead, Write};
use std::net::Ipv4Addr;

/// Discriminant column value: which payload a row carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgKind {
    /// PING keepalive.
    Ping = 0,
    /// PONG advertisement (side table: address + shared files).
    Pong = 1,
    /// QUERY (side table: interned text + SHA1 flag).
    Query = 2,
    /// QUERYHIT (side table: responder address + result count).
    QueryHit = 3,
    /// BYE.
    Bye = 4,
}

/// PONG side-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PongCell {
    addr: Ipv4Addr,
    shared_files: u32,
}

/// QUERY side-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueryCell {
    text: QueryId,
    sha1: bool,
}

/// QUERYHIT side-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HitCell {
    addr: Ipv4Addr,
    results: u8,
}

/// Columnar (structure-of-arrays) message store.
///
/// Rows are addressed by insertion index; `arg` points into the
/// kind-specific side table for PONG/QUERY/QUERYHIT rows and is unused
/// for PING/BYE. The `wire_len` column is in-memory provenance (like
/// [`Trace::wire_bytes`]): it does not survive the JSONL interchange
/// format and does not participate in equality.
#[derive(Debug, Clone, Default)]
pub struct MessageColumns {
    session: Vec<u32>,
    guid: Vec<Guid>,
    at: Vec<SimTime>,
    hops: Vec<u8>,
    ttl: Vec<u8>,
    kind: Vec<MsgKind>,
    arg: Vec<u32>,
    wire_len: Vec<u32>,
    pong: Vec<PongCell>,
    query: Vec<QueryCell>,
    hit: Vec<HitCell>,
}

impl PartialEq for MessageColumns {
    fn eq(&self, other: &Self) -> bool {
        // Everything except `wire_len`, which is provenance, not data.
        self.session == other.session
            && self.guid == other.guid
            && self.at == other.at
            && self.hops == other.hops
            && self.ttl == other.ttl
            && self.kind == other.kind
            && self.arg == other.arg
            && self.pong == other.pong
            && self.query == other.query
            && self.hit == other.hit
    }
}

impl MessageColumns {
    /// Empty store.
    pub fn new() -> Self {
        MessageColumns::default()
    }

    /// Empty store with the main columns pre-reserved for `n` rows.
    /// Side tables grow on demand (their split between kinds is not
    /// known up front).
    pub fn with_capacity(n: usize) -> Self {
        MessageColumns {
            session: Vec::with_capacity(n),
            guid: Vec::with_capacity(n),
            at: Vec::with_capacity(n),
            hops: Vec::with_capacity(n),
            ttl: Vec::with_capacity(n),
            kind: Vec::with_capacity(n),
            arg: Vec::with_capacity(n),
            wire_len: Vec::with_capacity(n),
            ..MessageColumns::default()
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.at.len()
    }

    /// True when no rows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.at.is_empty()
    }

    /// Append a record with no wire-length accounting.
    pub fn push(&mut self, rec: MessageRecord) {
        self.push_with_wire(rec, 0);
    }

    /// Append a record, keeping `wire` bytes of provenance in the
    /// `wire_len` column.
    pub fn push_with_wire(&mut self, rec: MessageRecord, wire: u32) {
        let arg = match rec.payload {
            RecordedPayload::Ping | RecordedPayload::Bye => 0,
            RecordedPayload::Pong { addr, shared_files } => {
                self.pong.push(PongCell { addr, shared_files });
                (self.pong.len() - 1) as u32
            }
            RecordedPayload::Query { text, sha1 } => {
                self.query.push(QueryCell { text, sha1 });
                (self.query.len() - 1) as u32
            }
            RecordedPayload::QueryHit { addr, results } => {
                self.hit.push(HitCell { addr, results });
                (self.hit.len() - 1) as u32
            }
        };
        self.session
            .push(u32::try_from(rec.session.0).expect("session id exceeds u32 range"));
        self.guid.push(rec.guid);
        self.at.push(rec.at);
        self.hops.push(rec.hops);
        self.ttl.push(rec.ttl);
        self.kind.push(kind_of(&rec.payload));
        self.arg.push(arg);
        self.wire_len.push(wire);
    }

    /// Reconstruct the record at row `i` (panics when out of bounds).
    pub fn get(&self, i: usize) -> MessageRecord {
        let payload = match self.kind[i] {
            MsgKind::Ping => RecordedPayload::Ping,
            MsgKind::Bye => RecordedPayload::Bye,
            MsgKind::Pong => {
                let c = self.pong[self.arg[i] as usize];
                RecordedPayload::Pong {
                    addr: c.addr,
                    shared_files: c.shared_files,
                }
            }
            MsgKind::Query => {
                let c = self.query[self.arg[i] as usize];
                RecordedPayload::Query {
                    text: c.text,
                    sha1: c.sha1,
                }
            }
            MsgKind::QueryHit => {
                let c = self.hit[self.arg[i] as usize];
                RecordedPayload::QueryHit {
                    addr: c.addr,
                    results: c.results,
                }
            }
        };
        MessageRecord {
            session: SessionId(u64::from(self.session[i])),
            guid: self.guid[i],
            at: self.at[i],
            hops: self.hops[i],
            ttl: self.ttl[i],
            payload,
        }
    }

    /// Wire length recorded for row `i` (0 when the producer did not
    /// account wire bytes).
    pub fn wire_len(&self, i: usize) -> u32 {
        self.wire_len[i]
    }

    /// Arrival-time column value at row `i`.
    pub fn time_at(&self, i: usize) -> SimTime {
        self.at[i]
    }

    /// Kind column value at row `i`.
    pub fn kind_at(&self, i: usize) -> MsgKind {
        self.kind[i]
    }

    /// Hops column value at row `i`.
    pub fn hops_at(&self, i: usize) -> u8 {
        self.hops[i]
    }

    /// Iterate rows as reconstructed records.
    pub fn iter(&self) -> impl Iterator<Item = MessageRecord> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Visit every hop-1 QUERY row without materializing records — the
    /// session-reconstruction and streaming fast path (touches only the
    /// session/at/hops/kind/arg columns plus the QUERY side table).
    pub fn for_each_one_hop_query(&self, mut f: impl FnMut(SessionId, SimTime, QueryId, bool)) {
        for i in 0..self.len() {
            if self.hops[i] == 1 && self.kind[i] == MsgKind::Query {
                let c = self.query[self.arg[i] as usize];
                f(
                    SessionId(u64::from(self.session[i])),
                    self.at[i],
                    c.text,
                    c.sha1,
                );
            }
        }
    }

    /// Resident bytes of the column data, counted at capacity (what the
    /// allocator actually holds, not just what is filled).
    pub fn mem_bytes(&self) -> u64 {
        fn cap<T>(v: &Vec<T>) -> u64 {
            (v.capacity() * std::mem::size_of::<T>()) as u64
        }
        cap(&self.session)
            + cap(&self.guid)
            + cap(&self.at)
            + cap(&self.hops)
            + cap(&self.ttl)
            + cap(&self.kind)
            + cap(&self.arg)
            + cap(&self.wire_len)
            + cap(&self.pong)
            + cap(&self.query)
            + cap(&self.hit)
    }
}

fn kind_of(p: &RecordedPayload) -> MsgKind {
    match p {
        RecordedPayload::Ping => MsgKind::Ping,
        RecordedPayload::Pong { .. } => MsgKind::Pong,
        RecordedPayload::Query { .. } => MsgKind::Query,
        RecordedPayload::QueryHit { .. } => MsgKind::QueryHit,
        RecordedPayload::Bye => MsgKind::Bye,
    }
}

impl<'a> IntoIterator for &'a MessageColumns {
    type Item = MessageRecord;
    type IntoIter = Box<dyn Iterator<Item = MessageRecord> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl FromIterator<MessageRecord> for MessageColumns {
    fn from_iter<I: IntoIterator<Item = MessageRecord>>(iter: I) -> Self {
        let mut cols = MessageColumns::new();
        for rec in iter {
            cols.push(rec);
        }
        cols
    }
}

impl Extend<MessageRecord> for MessageColumns {
    fn extend<I: IntoIterator<Item = MessageRecord>>(&mut self, iter: I) {
        for rec in iter {
            self.push(rec);
        }
    }
}

/// Serializes as the sequence of reconstructed records, so the serde form
/// (and with it any JSON representation) is identical to the old
/// `Vec<MessageRecord>` layout.
impl Serialize for MessageColumns {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(self.iter().map(|r| r.to_value()).collect())
    }
}

impl Deserialize for MessageColumns {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Array(items) => {
                let mut cols = MessageColumns::with_capacity(items.len());
                for item in items {
                    cols.push(MessageRecord::from_value(item)?);
                }
                Ok(cols)
            }
            other => Err(serde::Error::msg(format!(
                "expected array of message records, found {}",
                other.type_name()
            ))),
        }
    }
}

/// A complete measurement trace: connection records plus message columns.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// One record per direct connection, indexed by [`SessionId`].
    pub connections: Vec<ConnectionRecord>,
    /// All received messages, in arrival order (columnar layout).
    pub messages: MessageColumns,
    /// Total wire size of the recorded messages, in bytes — charged by the
    /// collector via `gnutella::wire::encoded_len` regardless of whether
    /// the frames traveled typed or byte-encoded. An in-memory provenance
    /// statistic: it is not part of the JSONL interchange format (readers
    /// of old traces see 0).
    #[serde(skip)]
    pub wire_bytes: u64,
}

/// Equality compares the recorded data — connections and messages — only.
/// `wire_bytes` (and the per-row `wire_len` column) is in-memory
/// provenance that does not survive the JSONL interchange format, so it
/// does not participate: a deserialized trace equals the one that wrote it.
impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.connections == other.connections && self.messages == other.messages
    }
}

/// One line of the JSONL interchange format.
#[derive(Debug, Serialize, Deserialize)]
#[serde(tag = "t", rename_all = "snake_case")]
enum TraceLine {
    Conn(ConnectionRecord),
    Msg(MessageRecord),
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Empty trace with pre-reserved capacity, for collectors that can
    /// estimate campaign volume up front (avoids repeated reallocation of
    /// the hot message columns during a run).
    pub fn with_capacity(connections: usize, messages: usize) -> Self {
        Trace {
            connections: Vec::with_capacity(connections),
            messages: MessageColumns::with_capacity(messages),
            wire_bytes: 0,
        }
    }

    /// Look up a connection record.
    pub fn connection(&self, id: SessionId) -> Option<&ConnectionRecord> {
        self.connections.get(id.0 as usize)
    }

    /// Overall characteristics (the Table 1 reproduction).
    pub fn stats(&self) -> TraceStats {
        TraceStats::of(self)
    }

    /// Resident bytes held by this trace: column capacities plus the
    /// connection records and their heap strings. This is the
    /// `peak_trace_bytes` a retain-mode campaign reports — the trace only
    /// grows, so its final size is its peak.
    pub fn mem_bytes(&self) -> u64 {
        let conns = (self.connections.capacity() * std::mem::size_of::<ConnectionRecord>()) as u64
            + self
                .connections
                .iter()
                .map(|c| c.user_agent.capacity() as u64)
                .sum::<u64>();
        conns + self.messages.mem_bytes()
    }

    /// Serialize as JSON lines: connection records first, then messages.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        for c in &self.connections {
            serde_json::to_writer(&mut w, &TraceLine::Conn(c.clone()))?;
            w.write_all(b"\n")?;
        }
        for m in self.messages.iter() {
            serde_json::to_writer(&mut w, &TraceLine::Msg(m))?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Read back a JSONL trace.
    ///
    /// Connection records are re-indexed by their embedded [`SessionId`];
    /// message order is preserved.
    pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<Trace> {
        let mut connections: Vec<Option<ConnectionRecord>> = Vec::new();
        let mut messages = MessageColumns::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let parsed: TraceLine = serde_json::from_str(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            match parsed {
                TraceLine::Conn(c) => {
                    let idx = c.id.0 as usize;
                    if connections.len() <= idx {
                        connections.resize(idx + 1, None);
                    }
                    connections[idx] = Some(c);
                }
                TraceLine::Msg(m) => messages.push(m),
            }
        }
        let connections = connections
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                c.ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("missing connection record for session {i}"),
                    )
                })
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Trace {
            connections,
            messages,
            wire_bytes: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordedPayload;
    use simnet::SimTime;
    use std::net::Ipv4Addr;

    fn test_guid() -> gnutella::Guid {
        gnutella::Guid([7; 16])
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..3u64 {
            t.connections.push(ConnectionRecord {
                id: SessionId(i),
                addr: Ipv4Addr::new(24, 0, 0, i as u8 + 1),
                user_agent: format!("Client/{i}"),
                ultrapeer: i % 2 == 0,
                start: SimTime::from_secs(i * 100),
                end: Some(SimTime::from_secs(i * 100 + 70)),
                closed_by_probe: i == 2,
            });
            t.messages.push(MessageRecord {
                session: SessionId(i),
                guid: test_guid(),
                at: SimTime::from_secs(i * 100 + 5),
                hops: 1,
                ttl: 6,
                payload: RecordedPayload::Query {
                    text: format!("song {i}").into(),
                    sha1: false,
                },
            });
        }
        t
    }

    #[test]
    fn jsonl_round_trip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    /// The JSONL interchange format is frozen: this golden output was
    /// captured from the row-oriented (pre-columnar) store and must stay
    /// byte-identical so old traces and external readers keep working.
    #[test]
    fn jsonl_matches_row_store_golden() {
        let mut t = Trace::new();
        t.connections.push(ConnectionRecord {
            id: SessionId(0),
            addr: Ipv4Addr::new(24, 10, 20, 30),
            user_agent: "Mutella/0.4.5".into(),
            ultrapeer: true,
            start: SimTime::from_millis(1_500),
            end: Some(SimTime::from_millis(400_000)),
            closed_by_probe: true,
        });
        t.connections.push(ConnectionRecord {
            id: SessionId(1),
            addr: Ipv4Addr::new(82, 1, 2, 3),
            user_agent: "LimeWire/4.2".into(),
            ultrapeer: false,
            start: SimTime::from_millis(2_250),
            end: None,
            closed_by_probe: false,
        });
        let g = test_guid();
        let mk = |at: u64, hops: u8, ttl: u8, session: u64, payload| MessageRecord {
            session: SessionId(session),
            guid: g,
            at: SimTime::from_millis(at),
            hops,
            ttl,
            payload,
        };
        t.messages.push(mk(3_000, 1, 6, 0, RecordedPayload::Ping));
        t.messages.push(mk(
            4_100,
            2,
            5,
            0,
            RecordedPayload::Pong {
                addr: Ipv4Addr::new(10, 0, 0, 9),
                shared_files: 340,
            },
        ));
        t.messages.push(mk(
            5_000,
            1,
            7,
            1,
            RecordedPayload::Query {
                text: "metallica one".into(),
                sha1: true,
            },
        ));
        t.messages.push(mk(
            6_000,
            3,
            4,
            1,
            RecordedPayload::QueryHit {
                addr: Ipv4Addr::new(24, 5, 6, 7),
                results: 12,
            },
        ));
        t.messages.push(mk(7_000, 1, 1, 0, RecordedPayload::Bye));

        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let golden = concat!(
            r#"{"t":"conn","id":0,"addr":"24.10.20.30","user_agent":"Mutella/0.4.5","ultrapeer":true,"start":1500,"end":400000,"closed_by_probe":true}"#,
            "\n",
            r#"{"t":"conn","id":1,"addr":"82.1.2.3","user_agent":"LimeWire/4.2","ultrapeer":false,"start":2250,"end":null,"closed_by_probe":false}"#,
            "\n",
            r#"{"t":"msg","session":0,"guid":[7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7],"at":3000,"hops":1,"ttl":6,"payload":"Ping"}"#,
            "\n",
            r#"{"t":"msg","session":0,"guid":[7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7],"at":4100,"hops":2,"ttl":5,"payload":{"Pong":{"addr":"10.0.0.9","shared_files":340}}}"#,
            "\n",
            r#"{"t":"msg","session":1,"guid":[7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7],"at":5000,"hops":1,"ttl":7,"payload":{"Query":{"text":"metallica one","sha1":true}}}"#,
            "\n",
            r#"{"t":"msg","session":1,"guid":[7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7],"at":6000,"hops":3,"ttl":4,"payload":{"QueryHit":{"addr":"24.5.6.7","results":12}}}"#,
            "\n",
            r#"{"t":"msg","session":0,"guid":[7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7],"at":7000,"hops":1,"ttl":1,"payload":"Bye"}"#,
            "\n",
        );
        assert_eq!(String::from_utf8(buf).unwrap(), golden);
    }

    #[test]
    fn columns_round_trip_every_kind() {
        let g = test_guid();
        let records = vec![
            MessageRecord {
                session: SessionId(3),
                guid: g,
                at: SimTime::from_millis(10),
                hops: 1,
                ttl: 6,
                payload: RecordedPayload::Ping,
            },
            MessageRecord {
                session: SessionId(1),
                guid: g,
                at: SimTime::from_millis(20),
                hops: 2,
                ttl: 5,
                payload: RecordedPayload::Pong {
                    addr: Ipv4Addr::new(1, 2, 3, 4),
                    shared_files: 99,
                },
            },
            MessageRecord {
                session: SessionId(0),
                guid: g,
                at: SimTime::from_millis(30),
                hops: 1,
                ttl: 7,
                payload: RecordedPayload::Query {
                    text: "q".into(),
                    sha1: true,
                },
            },
            MessageRecord {
                session: SessionId(2),
                guid: g,
                at: SimTime::from_millis(40),
                hops: 4,
                ttl: 3,
                payload: RecordedPayload::QueryHit {
                    addr: Ipv4Addr::new(9, 8, 7, 6),
                    results: 200,
                },
            },
            MessageRecord {
                session: SessionId(0),
                guid: g,
                at: SimTime::from_millis(50),
                hops: 1,
                ttl: 1,
                payload: RecordedPayload::Bye,
            },
        ];
        let cols: MessageColumns = records.iter().copied().collect();
        assert_eq!(cols.len(), records.len());
        let back: Vec<MessageRecord> = cols.iter().collect();
        assert_eq!(back, records);
        // Random access agrees with iteration.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(cols.get(i), *r);
        }
    }

    #[test]
    fn wire_len_excluded_from_equality() {
        let rec = MessageRecord {
            session: SessionId(0),
            guid: test_guid(),
            at: SimTime::from_millis(5),
            hops: 1,
            ttl: 6,
            payload: RecordedPayload::Ping,
        };
        let mut a = MessageColumns::new();
        a.push_with_wire(rec, 23);
        let mut b = MessageColumns::new();
        b.push(rec);
        assert_eq!(a, b);
        assert_eq!(a.wire_len(0), 23);
        assert_eq!(b.wire_len(0), 0);
    }

    #[test]
    fn one_hop_query_visitor_matches_filtered_iteration() {
        let t = sample_trace();
        let mut seen = Vec::new();
        t.messages
            .for_each_one_hop_query(|sid, at, text, sha1| seen.push((sid, at, text, sha1)));
        let expected: Vec<_> = t
            .messages
            .iter()
            .filter(|m| m.is_one_hop_query())
            .map(|m| match m.payload {
                RecordedPayload::Query { text, sha1 } => (m.session, m.at, text, sha1),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn mem_bytes_counts_columns_and_strings() {
        let t = sample_trace();
        assert!(t.mem_bytes() > 0);
        let empty = Trace::new();
        assert_eq!(empty.messages.mem_bytes(), 0);
    }

    #[test]
    fn read_tolerates_blank_lines_and_reorders_connections() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        // Shuffle: put messages before connections and add blank lines.
        let text = String::from_utf8(buf).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.reverse();
        let shuffled = format!("\n{}\n\n", lines.join("\n\n"));
        let back = Trace::read_jsonl(shuffled.as_bytes()).unwrap();
        assert_eq!(back.connections, t.connections);
        assert_eq!(back.messages.len(), t.messages.len());
    }

    #[test]
    fn read_rejects_gap_in_sessions() {
        let mut t = sample_trace();
        t.connections.remove(1);
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        assert!(Trace::read_jsonl(buf.as_slice()).is_err());
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(Trace::read_jsonl("not json\n".as_bytes()).is_err());
    }

    #[test]
    fn connection_lookup() {
        let t = sample_trace();
        assert_eq!(t.connection(SessionId(1)).unwrap().user_agent, "Client/1");
        assert!(t.connection(SessionId(99)).is_none());
    }
}
