//! In-memory trace store with JSONL (de)serialization.
//!
//! Messages live in [`MessageColumns`]: an uncompressed columnar
//! (structure-of-arrays) *tail* that absorbs appends, sealed into
//! immutable per-column-compressed chunks of [`CHUNK_ROWS`] rows as it
//! fills (see [`crate::chunk`] for the codec: frame-of-reference
//! bit-packed timestamps/session ids/wire lengths, dictionary-coded
//! `QueryId`s against the process-global interner, bit-packed
//! kinds/hops/TTL, entropy-elided GUIDs). A row costs ~39 bytes flat
//! and ~20–24 bytes sealed; with `P2PQ_TRACE_SPILL=dir` set, sealed
//! chunks are written to an (unlinked) spill file and re-read on
//! demand, so a paper-scale retained trace holds only the tail, the
//! chunk directory, and one decoded batch in memory.
//!
//! The public API stays record-shaped: [`MessageColumns::push`] takes a
//! [`MessageRecord`], iteration yields [`MessageRecord`]s by value
//! (everything in a record is `Copy`), and serde round-trips through the
//! record form so the JSONL interchange format is byte-identical to the
//! row-oriented store. Analysis passes that want the columnar layout
//! iterate decoded batches via [`MessageColumns::for_each_batch`] or the
//! selective [`MessageColumns::for_each_one_hop_query`] scan; sequential
//! consumers (export, replay, merge) use [`MessageColumns::cursor`],
//! which decodes each chunk exactly once into its own scratch buffer.
//! Random access ([`MessageColumns::get`] and friends) stays available
//! through a shared single-chunk decode cache behind a mutex — correct
//! from `&self` across threads, but meant for tests and spot checks, not
//! hot loops.

use crate::chunk::{self, ChunkBatch, SpillFile};
use crate::record::{ConnectionRecord, MessageRecord, RecordedPayload, SessionId};
use crate::stats::TraceStats;
use gnutella::{Guid, QueryId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use simnet::SimTime;
use std::io::{self, BufRead, Write};
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::sync::Arc;
use telemetry::{Counter, Gauge};

/// Rows per sealed chunk. A power of two that is a whole multiple of the
/// collector's 8k drain batches, so seals land on drain boundaries; at
/// ~39 bytes of flat column data per row a chunk encodes ~2.5 MB of
/// input at a time.
pub const CHUNK_ROWS: usize = 65_536;

/// Discriminant column value: which payload a row carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgKind {
    /// PING keepalive.
    Ping = 0,
    /// PONG advertisement (side table: address + shared files).
    Pong = 1,
    /// QUERY (side table: interned text + SHA1 flag).
    Query = 2,
    /// QUERYHIT (side table: responder address + result count).
    QueryHit = 3,
    /// BYE.
    Bye = 4,
}

impl MsgKind {
    /// Inverse of `kind as u8` (panics on an invalid discriminant —
    /// chunk bytes are only ever produced by this process).
    pub fn from_u8(v: u8) -> MsgKind {
        match v {
            0 => MsgKind::Ping,
            1 => MsgKind::Pong,
            2 => MsgKind::Query,
            3 => MsgKind::QueryHit,
            4 => MsgKind::Bye,
            other => panic!("invalid MsgKind discriminant {other}"),
        }
    }
}

/// The uncompressed columnar tail: plain parallel vectors, append-only,
/// drained into a sealed chunk when it reaches the chunk size. This is
/// the old flat SoA layout; payload side tables are kept as separate
/// parallel vectors per field so sealing can hand the codec borrowed
/// column slices directly.
#[derive(Debug, Clone, Default)]
struct FlatColumns {
    session: Vec<u32>,
    guid: Vec<Guid>,
    at: Vec<SimTime>,
    hops: Vec<u8>,
    ttl: Vec<u8>,
    kind: Vec<MsgKind>,
    arg: Vec<u32>,
    wire_len: Vec<u32>,
    pong_addr: Vec<Ipv4Addr>,
    pong_files: Vec<u32>,
    query_id: Vec<u32>,
    query_sha1: Vec<bool>,
    hit_addr: Vec<Ipv4Addr>,
    hit_results: Vec<u8>,
}

impl FlatColumns {
    fn len(&self) -> usize {
        self.at.len()
    }

    fn is_empty(&self) -> bool {
        self.at.is_empty()
    }

    fn reserve(&mut self, n: usize) {
        self.session.reserve(n);
        self.guid.reserve(n);
        self.at.reserve(n);
        self.hops.reserve(n);
        self.ttl.reserve(n);
        self.kind.reserve(n);
        self.arg.reserve(n);
        self.wire_len.reserve(n);
    }

    fn push_with_wire(&mut self, rec: MessageRecord, wire: u32) {
        let arg = match rec.payload {
            RecordedPayload::Ping | RecordedPayload::Bye => 0,
            RecordedPayload::Pong { addr, shared_files } => {
                self.pong_addr.push(addr);
                self.pong_files.push(shared_files);
                (self.pong_addr.len() - 1) as u32
            }
            RecordedPayload::Query { text, sha1 } => {
                self.query_id.push(text.raw());
                self.query_sha1.push(sha1);
                (self.query_id.len() - 1) as u32
            }
            RecordedPayload::QueryHit { addr, results } => {
                self.hit_addr.push(addr);
                self.hit_results.push(results);
                (self.hit_addr.len() - 1) as u32
            }
        };
        self.session
            .push(u32::try_from(rec.session.0).expect("session id exceeds u32 range"));
        self.guid.push(rec.guid);
        self.at.push(rec.at);
        self.hops.push(rec.hops);
        self.ttl.push(rec.ttl);
        self.kind.push(kind_of(&rec.payload));
        self.arg.push(arg);
        self.wire_len.push(wire);
    }

    /// Columnar batch append: one sequential pass fills the per-kind
    /// side tables plus the data-dependent `kind`/`arg` columns, then
    /// the six remaining columns extend in bulk — one reserve + bounds
    /// check per column per batch instead of eight `push` calls per
    /// record. Produces byte-identical columns to repeated
    /// [`FlatColumns::push_with_wire`] calls: side-table rows are
    /// appended in record order, so every `arg` index is unchanged.
    fn extend_batch(&mut self, records: &[MessageRecord], wire_lens: &[u32]) {
        debug_assert_eq!(records.len(), wire_lens.len());
        self.reserve(records.len());
        for rec in records {
            let arg = match rec.payload {
                RecordedPayload::Ping | RecordedPayload::Bye => 0,
                RecordedPayload::Pong { addr, shared_files } => {
                    self.pong_addr.push(addr);
                    self.pong_files.push(shared_files);
                    (self.pong_addr.len() - 1) as u32
                }
                RecordedPayload::Query { text, sha1 } => {
                    self.query_id.push(text.raw());
                    self.query_sha1.push(sha1);
                    (self.query_id.len() - 1) as u32
                }
                RecordedPayload::QueryHit { addr, results } => {
                    self.hit_addr.push(addr);
                    self.hit_results.push(results);
                    (self.hit_addr.len() - 1) as u32
                }
            };
            self.kind.push(kind_of(&rec.payload));
            self.arg.push(arg);
        }
        self.session.extend(
            records
                .iter()
                .map(|r| u32::try_from(r.session.0).expect("session id exceeds u32 range")),
        );
        self.guid.extend(records.iter().map(|r| r.guid));
        self.at.extend(records.iter().map(|r| r.at));
        self.hops.extend(records.iter().map(|r| r.hops));
        self.ttl.extend(records.iter().map(|r| r.ttl));
        self.wire_len.extend_from_slice(wire_lens);
    }

    fn get(&self, i: usize) -> MessageRecord {
        let arg = self.arg[i] as usize;
        let payload = match self.kind[i] {
            MsgKind::Ping => RecordedPayload::Ping,
            MsgKind::Bye => RecordedPayload::Bye,
            MsgKind::Pong => RecordedPayload::Pong {
                addr: self.pong_addr[arg],
                shared_files: self.pong_files[arg],
            },
            MsgKind::Query => RecordedPayload::Query {
                text: QueryId::from_raw(self.query_id[arg]),
                sha1: self.query_sha1[arg],
            },
            MsgKind::QueryHit => RecordedPayload::QueryHit {
                addr: self.hit_addr[arg],
                results: self.hit_results[arg],
            },
        };
        MessageRecord {
            session: SessionId(u64::from(self.session[i])),
            guid: self.guid[i],
            at: self.at[i],
            hops: self.hops[i],
            ttl: self.ttl[i],
            payload,
        }
    }

    /// Reset for reuse after sealing, keeping allocations.
    fn clear(&mut self) {
        self.session.clear();
        self.guid.clear();
        self.at.clear();
        self.hops.clear();
        self.ttl.clear();
        self.kind.clear();
        self.arg.clear();
        self.wire_len.clear();
        self.pong_addr.clear();
        self.pong_files.clear();
        self.query_id.clear();
        self.query_sha1.clear();
        self.hit_addr.clear();
        self.hit_results.clear();
    }

    fn shrink_to_fit(&mut self) {
        self.session.shrink_to_fit();
        self.guid.shrink_to_fit();
        self.at.shrink_to_fit();
        self.hops.shrink_to_fit();
        self.ttl.shrink_to_fit();
        self.kind.shrink_to_fit();
        self.arg.shrink_to_fit();
        self.wire_len.shrink_to_fit();
        self.pong_addr.shrink_to_fit();
        self.pong_files.shrink_to_fit();
        self.query_id.shrink_to_fit();
        self.query_sha1.shrink_to_fit();
        self.hit_addr.shrink_to_fit();
        self.hit_results.shrink_to_fit();
    }

    fn as_chunk_source(&self) -> chunk::ChunkSource<'_> {
        chunk::ChunkSource {
            session: &self.session,
            at: &self.at,
            hops: &self.hops,
            ttl: &self.ttl,
            kind: &self.kind,
            guid: &self.guid,
            wire: &self.wire_len,
            pong_addr: &self.pong_addr,
            pong_files: &self.pong_files,
            query_id: &self.query_id,
            query_sha1: &self.query_sha1,
            hit_addr: &self.hit_addr,
            hit_results: &self.hit_results,
        }
    }

    /// Copy this run into a [`ChunkBatch`], so batch-wise consumers see
    /// the tail through the same interface as sealed chunks.
    fn fill_batch(&self, out: &mut ChunkBatch) {
        out.clear();
        out.session.extend_from_slice(&self.session);
        out.at_ms.extend(self.at.iter().map(|t| t.as_millis()));
        out.hops.extend_from_slice(&self.hops);
        out.ttl.extend_from_slice(&self.ttl);
        out.kind.extend(self.kind.iter().map(|&k| k as u8));
        out.arg.extend_from_slice(&self.arg);
        out.guid.extend_from_slice(&self.guid);
        out.wire.extend_from_slice(&self.wire_len);
        out.pong_addr.extend_from_slice(&self.pong_addr);
        out.pong_files.extend_from_slice(&self.pong_files);
        out.query_id.extend_from_slice(&self.query_id);
        out.query_sha1.extend_from_slice(&self.query_sha1);
        out.hit_addr.extend_from_slice(&self.hit_addr);
        out.hit_results.extend_from_slice(&self.hit_results);
    }

    /// Bytes of column data currently filled (not capacity) — the "raw"
    /// side of the chunk compression ratio.
    fn filled_bytes(&self) -> u64 {
        fn filled<T>(v: &[T]) -> u64 {
            std::mem::size_of_val(v) as u64
        }
        filled(&self.session)
            + filled(&self.guid)
            + filled(&self.at)
            + filled(&self.hops)
            + filled(&self.ttl)
            + filled(&self.kind)
            + filled(&self.arg)
            + filled(&self.wire_len)
            + filled(&self.pong_addr)
            + filled(&self.pong_files)
            + filled(&self.query_id)
            + filled(&self.query_sha1)
            + filled(&self.hit_addr)
            + filled(&self.hit_results)
    }

    /// Resident bytes, counted at capacity.
    fn mem_bytes(&self) -> u64 {
        fn cap<T>(v: &Vec<T>) -> u64 {
            (v.capacity() * std::mem::size_of::<T>()) as u64
        }
        cap(&self.session)
            + cap(&self.guid)
            + cap(&self.at)
            + cap(&self.hops)
            + cap(&self.ttl)
            + cap(&self.kind)
            + cap(&self.arg)
            + cap(&self.wire_len)
            + cap(&self.pong_addr)
            + cap(&self.pong_files)
            + cap(&self.query_id)
            + cap(&self.query_sha1)
            + cap(&self.hit_addr)
            + cap(&self.hit_results)
    }
}

/// One sealed chunk: encoded bytes in memory, or an extent of the spill
/// file. Every sealed chunk holds exactly `chunk_rows` rows, so row →
/// chunk mapping is a division.
#[derive(Debug, Clone)]
enum SealedChunk {
    Mem(Vec<u8>),
    Spilled { offset: u64, len: u32 },
}

/// Shared single-chunk decode cache for random access from `&self`.
struct DecodeCache {
    /// Index of the decoded chunk, `usize::MAX` when empty.
    chunk: usize,
    batch: ChunkBatch,
    file_buf: Vec<u8>,
}

impl DecodeCache {
    fn empty() -> DecodeCache {
        DecodeCache {
            chunk: usize::MAX,
            batch: ChunkBatch::default(),
            file_buf: Vec::new(),
        }
    }

    fn mem_bytes(&self) -> u64 {
        self.batch.mem_bytes() + self.file_buf.capacity() as u64
    }
}

/// Columnar message store: sealed compressed chunks plus a flat tail.
///
/// Rows are addressed by insertion index; the `wire_len` column is
/// in-memory provenance (like [`Trace::wire_bytes`]): it does not
/// survive the JSONL interchange format and does not participate in
/// equality. Spill-to-disk is controlled by the `P2PQ_TRACE_SPILL`
/// environment variable (a directory path) read at construction, or
/// per-store via [`MessageColumns::configure_chunks`].
pub struct MessageColumns {
    chunk_rows: usize,
    sealed: Vec<SealedChunk>,
    /// Rows covered by `sealed` — always `sealed.len() * chunk_rows`.
    rows_sealed: usize,
    tail: FlatColumns,
    spill_dir: Option<PathBuf>,
    /// Lazily created on first seal; shared by clones (extents are
    /// immutable once written, appends take disjoint offsets).
    spill: Option<Arc<SpillFile>>,
    /// Set after an I/O error: stop retrying, keep chunks in memory.
    spill_failed: bool,
    raw_sealed_bytes: u64,
    encoded_sealed_bytes: u64,
    spilled_bytes: u64,
    /// Reusable seal-time scratch (timestamp millis + encode output).
    encode_ms_scratch: Vec<u64>,
    encode_buf: Vec<u8>,
    cache: Mutex<DecodeCache>,
}

impl Default for MessageColumns {
    fn default() -> Self {
        MessageColumns {
            chunk_rows: CHUNK_ROWS,
            sealed: Vec::new(),
            rows_sealed: 0,
            tail: FlatColumns::default(),
            spill_dir: env_spill_dir(),
            spill: None,
            spill_failed: false,
            raw_sealed_bytes: 0,
            encoded_sealed_bytes: 0,
            spilled_bytes: 0,
            encode_ms_scratch: Vec::new(),
            encode_buf: Vec::new(),
            cache: Mutex::new(DecodeCache::empty()),
        }
    }
}

fn env_spill_dir() -> Option<PathBuf> {
    std::env::var_os("P2PQ_TRACE_SPILL")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

impl Clone for MessageColumns {
    fn clone(&self) -> Self {
        MessageColumns {
            chunk_rows: self.chunk_rows,
            sealed: self.sealed.clone(),
            rows_sealed: self.rows_sealed,
            tail: self.tail.clone(),
            spill_dir: self.spill_dir.clone(),
            spill: self.spill.clone(),
            spill_failed: self.spill_failed,
            raw_sealed_bytes: self.raw_sealed_bytes,
            encoded_sealed_bytes: self.encoded_sealed_bytes,
            spilled_bytes: self.spilled_bytes,
            encode_ms_scratch: Vec::new(),
            encode_buf: Vec::new(),
            cache: Mutex::new(DecodeCache::empty()),
        }
    }
}

impl std::fmt::Debug for MessageColumns {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MessageColumns")
            .field("rows", &self.len())
            .field("sealed_chunks", &self.sealed.len())
            .field("chunk_rows", &self.chunk_rows)
            .field("encoded_sealed_bytes", &self.encoded_sealed_bytes)
            .field("spilled_bytes", &self.spilled_bytes)
            .finish()
    }
}

impl PartialEq for MessageColumns {
    fn eq(&self, other: &Self) -> bool {
        // Everything except `wire_len`, which is provenance, not data.
        if self.len() != other.len() {
            return false;
        }
        let mut a = self.cursor();
        let mut b = other.cursor();
        loop {
            match (a.next_with_wire(), b.next_with_wire()) {
                (Some((ra, _)), Some((rb, _))) => {
                    if ra != rb {
                        return false;
                    }
                }
                (None, None) => return true,
                _ => return false,
            }
        }
    }
}

impl MessageColumns {
    /// Empty store.
    pub fn new() -> Self {
        MessageColumns::default()
    }

    /// Empty store pre-reserved for `n` rows: the tail reserves at most
    /// one chunk (rows beyond that live compressed), the chunk directory
    /// reserves one slot per expected chunk. Side tables grow on demand.
    pub fn with_capacity(n: usize) -> Self {
        let mut cols = MessageColumns::default();
        cols.tail.reserve(n.min(cols.chunk_rows));
        cols.sealed.reserve(n / cols.chunk_rows);
        cols
    }

    /// Override chunk size and spill directory (tests and tools). Only
    /// valid on an empty store — sealed chunks are uniform.
    ///
    /// Panics if the store already holds rows or `chunk_rows` is 0.
    pub fn configure_chunks(&mut self, chunk_rows: usize, spill_dir: Option<PathBuf>) {
        assert!(
            self.is_empty() && self.sealed.is_empty(),
            "configure_chunks requires an empty store"
        );
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        self.chunk_rows = chunk_rows;
        self.spill_dir = spill_dir;
        self.spill = None;
        self.spill_failed = false;
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows_sealed + self.tail.len()
    }

    /// True when no rows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a record with no wire-length accounting.
    pub fn push(&mut self, rec: MessageRecord) {
        self.push_with_wire(rec, 0);
    }

    /// Append a record, keeping `wire` bytes of provenance in the
    /// `wire_len` column. Seals the tail into a compressed chunk when it
    /// reaches the chunk size.
    pub fn push_with_wire(&mut self, rec: MessageRecord, wire: u32) {
        self.tail.push_with_wire(rec, wire);
        if self.tail.len() == self.chunk_rows {
            self.seal_tail();
        }
    }

    /// Append a drained batch (the [`crate::sink::TraceSink`] path).
    ///
    /// Fast path: the batch is split at chunk-seal boundaries and each
    /// segment lands in the typed columns via
    /// [`FlatColumns::extend_batch`] — one reserve + bounds check per
    /// column per segment instead of eight per-record `push` calls.
    /// Sealing semantics are identical to the per-record path: the tail
    /// seals exactly when it reaches `chunk_rows`.
    pub fn push_batch(&mut self, mut records: &[MessageRecord], mut wire_lens: &[u32]) {
        debug_assert_eq!(records.len(), wire_lens.len());
        if records.is_empty() {
            return;
        }
        telemetry::global().incr(Counter::SinkFastBatches);
        while !records.is_empty() {
            let room = self.chunk_rows - self.tail.len();
            let take = room.min(records.len());
            let (head, rest) = records.split_at(take);
            let (whead, wrest) = wire_lens.split_at(take);
            self.tail.extend_batch(head, whead);
            records = rest;
            wire_lens = wrest;
            if self.tail.len() == self.chunk_rows {
                self.seal_tail();
            }
        }
    }

    /// Encode the full tail into a sealed chunk and reset it.
    fn seal_tail(&mut self) {
        telemetry::scope!("seal");
        debug_assert_eq!(self.tail.len(), self.chunk_rows);
        let mut bytes = std::mem::take(&mut self.encode_buf);
        chunk::encode_chunk(
            &self.tail.as_chunk_source(),
            &mut self.encode_ms_scratch,
            &mut bytes,
        );
        self.raw_sealed_bytes += self.tail.filled_bytes();
        self.encoded_sealed_bytes += bytes.len() as u64;

        let mut stored = None;
        if let Some(dir) = &self.spill_dir {
            if !self.spill_failed && self.spill.is_none() {
                match SpillFile::create(dir) {
                    Ok(f) => self.spill = Some(Arc::new(f)),
                    Err(e) => {
                        telemetry::warn!(
                            "trace spill disabled: cannot create spill file in {}: {e} \
                             (degrading to in-memory chunks)",
                            dir.display()
                        );
                        telemetry::global().incr(Counter::SpillDegraded);
                        self.spill_failed = true;
                    }
                }
            }
            if !self.spill_failed {
                if let Some(f) = &self.spill {
                    match f.append(&bytes) {
                        Ok(offset) => {
                            self.spilled_bytes += bytes.len() as u64;
                            stored = Some(SealedChunk::Spilled {
                                offset,
                                len: bytes.len() as u32,
                            });
                        }
                        Err(e) => {
                            telemetry::warn!(
                                "trace spill disabled after write error: {e} \
                                 (degrading to in-memory chunks)"
                            );
                            telemetry::global().incr(Counter::SpillDegraded);
                            self.spill_failed = true;
                        }
                    }
                }
            }
        }
        let spilled = stored.is_some();
        match stored {
            Some(s) => {
                self.sealed.push(s);
                self.encode_buf = bytes; // reuse next seal
            }
            None => {
                bytes.shrink_to_fit();
                self.sealed.push(SealedChunk::Mem(bytes));
            }
        }
        self.rows_sealed += self.tail.len();
        self.tail.clear();

        let reg = telemetry::global();
        reg.incr(Counter::ChunkSeals);
        if spilled {
            // One add per seal; the value is the bytes appended.
            reg.add(
                Counter::SpillBytesWritten,
                self.sealed.last().map_or(0, |c| match c {
                    SealedChunk::Spilled { len, .. } => u64::from(*len),
                    SealedChunk::Mem(_) => 0,
                }),
            );
        }
        // Resident encoded bytes = all sealed minus spilled extents.
        reg.gauge_max(
            Gauge::PeakTraceBytes,
            self.encoded_sealed_bytes - self.spilled_bytes,
        );
    }

    /// Fetch chunk `idx`'s encoded bytes: borrowed in place for resident
    /// chunks, read from the spill file into `file_buf` otherwise.
    fn chunk_data<'a>(&'a self, idx: usize, file_buf: &'a mut Vec<u8>) -> &'a [u8] {
        match &self.sealed[idx] {
            SealedChunk::Mem(b) => b,
            SealedChunk::Spilled { offset, len } => {
                self.spill
                    .as_ref()
                    .expect("spilled chunk without spill file")
                    .read_into(*offset, *len as usize, file_buf)
                    .expect("trace spill read failed");
                file_buf
            }
        }
    }

    /// Run `f` against the decoded batch for chunk `idx`, via the shared
    /// cache (random-access path).
    fn with_cached_batch<R>(&self, idx: usize, f: impl FnOnce(&ChunkBatch) -> R) -> R {
        let mut guard = self.cache.lock();
        let cache = &mut *guard;
        if cache.chunk != idx {
            telemetry::global().incr(Counter::DecodeCacheMisses);
            let bytes = self.chunk_data(idx, &mut cache.file_buf);
            chunk::decode_chunk(bytes, &mut cache.batch);
            cache.chunk = idx;
        } else {
            telemetry::global().incr(Counter::DecodeCacheHits);
        }
        f(&cache.batch)
    }

    /// Reconstruct the record at row `i` (panics when out of bounds).
    ///
    /// Sealed rows decode through a shared one-chunk cache; sequential
    /// consumers should prefer [`MessageColumns::cursor`] or
    /// [`MessageColumns::iter`], which skip the cache lock.
    pub fn get(&self, i: usize) -> MessageRecord {
        if i >= self.rows_sealed {
            return self.tail.get(i - self.rows_sealed);
        }
        self.with_cached_batch(i / self.chunk_rows, |b| b.record(i % self.chunk_rows))
    }

    /// Wire length recorded for row `i` (0 when the producer did not
    /// account wire bytes).
    pub fn wire_len(&self, i: usize) -> u32 {
        if i >= self.rows_sealed {
            return self.tail.wire_len[i - self.rows_sealed];
        }
        self.with_cached_batch(i / self.chunk_rows, |b| b.wire_len(i % self.chunk_rows))
    }

    /// Arrival-time column value at row `i`.
    pub fn time_at(&self, i: usize) -> SimTime {
        if i >= self.rows_sealed {
            return self.tail.at[i - self.rows_sealed];
        }
        self.with_cached_batch(i / self.chunk_rows, |b| {
            SimTime::from_millis(b.at_ms[i % self.chunk_rows])
        })
    }

    /// Kind column value at row `i`.
    pub fn kind_at(&self, i: usize) -> MsgKind {
        if i >= self.rows_sealed {
            return self.tail.kind[i - self.rows_sealed];
        }
        self.with_cached_batch(i / self.chunk_rows, |b| {
            MsgKind::from_u8(b.kind[i % self.chunk_rows])
        })
    }

    /// Hops column value at row `i`.
    pub fn hops_at(&self, i: usize) -> u8 {
        if i >= self.rows_sealed {
            return self.tail.hops[i - self.rows_sealed];
        }
        self.with_cached_batch(i / self.chunk_rows, |b| b.hops[i % self.chunk_rows])
    }

    /// Sequential reader with its own decode scratch: decodes each
    /// sealed chunk exactly once as the position crosses it, no locks.
    /// The canonical shard-merge and export path.
    pub fn cursor(&self) -> MessageCursor<'_> {
        MessageCursor {
            cols: self,
            next: 0,
            chunk: usize::MAX,
            batch: ChunkBatch::default(),
            file_buf: Vec::new(),
        }
    }

    /// Iterate rows as reconstructed records (cursor-backed).
    pub fn iter(&self) -> impl Iterator<Item = MessageRecord> + '_ {
        let mut cur = self.cursor();
        std::iter::from_fn(move || cur.next_with_wire().map(|(rec, _)| rec))
    }

    /// Visit every decoded column batch in row order: each sealed chunk
    /// once, then the flat tail copied through the same [`ChunkBatch`]
    /// shape. The chunk-at-a-time analysis kernels (trace stats, the
    /// filter/popularity fast path) are written against this.
    pub fn for_each_batch(&self, mut f: impl FnMut(&ChunkBatch)) {
        let mut batch = ChunkBatch::default();
        let mut file_buf = Vec::new();
        for idx in 0..self.sealed.len() {
            let bytes = self.chunk_data(idx, &mut file_buf);
            chunk::decode_chunk(bytes, &mut batch);
            f(&batch);
        }
        if !self.tail.is_empty() {
            self.tail.fill_batch(&mut batch);
            f(&batch);
        }
    }

    /// Visit every hop-1 QUERY row without materializing records — the
    /// session-reconstruction and streaming fast path. Sealed chunks use
    /// a selective decode that reads only the AT/SESSION/KIND/HOPS/QUERY
    /// sections (TTL, GUID, wire and the other side tables are skipped
    /// without being touched).
    pub fn for_each_one_hop_query(&self, mut f: impl FnMut(SessionId, SimTime, QueryId, bool)) {
        let mut scan = chunk::QueryScan::default();
        let mut file_buf = Vec::new();
        for idx in 0..self.sealed.len() {
            let bytes = self.chunk_data(idx, &mut file_buf);
            let view = chunk::decode_query_scan(bytes, &mut scan);
            let mut q = 0usize;
            let mut i = 0usize;
            view.kind.for_each(view.rows, |k| {
                if k == MsgKind::Query as u8 {
                    if view.hops.get(i) == 1 {
                        // Hops/timestamp/session unpacked here only —
                        // at the QUERY rows, not for the whole chunk.
                        f(
                            SessionId(u64::from(view.session.get(i))),
                            SimTime::from_millis(view.at.get(i)),
                            QueryId::from_raw(scan.query_id[q]),
                            scan.query_sha1[q],
                        );
                    }
                    q += 1;
                }
                i += 1;
            });
        }
        let t = &self.tail;
        for i in 0..t.len() {
            if t.kind[i] == MsgKind::Query && t.hops[i] == 1 {
                let a = t.arg[i] as usize;
                f(
                    SessionId(u64::from(t.session[i])),
                    t.at[i],
                    QueryId::from_raw(t.query_id[a]),
                    t.query_sha1[a],
                );
            }
        }
    }

    /// Resident bytes: the flat tail at capacity, sealed chunks that are
    /// held in memory (spilled extents cost nothing here), the chunk
    /// directory, and the decode/encode scratch buffers.
    pub fn mem_bytes(&self) -> u64 {
        let mem_chunks: u64 = self
            .sealed
            .iter()
            .map(|c| match c {
                SealedChunk::Mem(b) => b.capacity() as u64,
                SealedChunk::Spilled { .. } => 0,
            })
            .sum();
        let directory = (self.sealed.capacity() * std::mem::size_of::<SealedChunk>()) as u64;
        let scratch = (self.encode_ms_scratch.capacity() * 8 + self.encode_buf.capacity()) as u64;
        self.tail.mem_bytes() + mem_chunks + directory + scratch + self.cache.lock().mem_bytes()
    }

    /// Number of sealed (compressed) chunks.
    pub fn sealed_chunks(&self) -> usize {
        self.sealed.len()
    }

    /// Encoded bytes of sealed chunks currently resident in memory
    /// (excludes spilled extents).
    pub fn retained_chunk_bytes(&self) -> u64 {
        self.sealed
            .iter()
            .map(|c| match c {
                SealedChunk::Mem(b) => b.len() as u64,
                SealedChunk::Spilled { .. } => 0,
            })
            .sum()
    }

    /// Total encoded bytes written to the spill file.
    pub fn spill_bytes_written(&self) -> u64 {
        self.spilled_bytes
    }

    /// Flat-column bytes per encoded byte over all sealed chunks
    /// (`None` until the first seal).
    pub fn compression_ratio(&self) -> Option<f64> {
        if self.encoded_sealed_bytes == 0 {
            None
        } else {
            Some(self.raw_sealed_bytes as f64 / self.encoded_sealed_bytes as f64)
        }
    }

    /// Drop scratch allocations (decode cache, seal buffers) and shrink
    /// the tail. Call before snapshotting or unwrapping a finished
    /// trace so teardown copies don't carry dead capacity.
    pub fn compact(&mut self) {
        *self.cache.lock() = DecodeCache::empty();
        self.encode_ms_scratch = Vec::new();
        self.encode_buf = Vec::new();
        self.tail.shrink_to_fit();
    }
}

/// Sequential decoding reader over a [`MessageColumns`], with private
/// scratch buffers (no shared-cache locking). Created by
/// [`MessageColumns::cursor`].
pub struct MessageCursor<'a> {
    cols: &'a MessageColumns,
    next: usize,
    /// Chunk index currently decoded into `batch` (`usize::MAX`: none).
    chunk: usize,
    batch: ChunkBatch,
    file_buf: Vec<u8>,
}

impl MessageCursor<'_> {
    fn ensure_chunk(&mut self, idx: usize) {
        if self.chunk != idx {
            let bytes = self.cols.chunk_data(idx, &mut self.file_buf);
            chunk::decode_chunk(bytes, &mut self.batch);
            self.chunk = idx;
        }
    }

    /// Arrival time of the next row, without advancing.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.next >= self.cols.len() {
            return None;
        }
        if self.next >= self.cols.rows_sealed {
            return Some(self.cols.tail.at[self.next - self.cols.rows_sealed]);
        }
        let idx = self.next / self.cols.chunk_rows;
        self.ensure_chunk(idx);
        Some(SimTime::from_millis(
            self.batch.at_ms[self.next % self.cols.chunk_rows],
        ))
    }

    /// The next row and its wire length, advancing the cursor.
    pub fn next_with_wire(&mut self) -> Option<(MessageRecord, u32)> {
        if self.next >= self.cols.len() {
            return None;
        }
        let out = if self.next >= self.cols.rows_sealed {
            let i = self.next - self.cols.rows_sealed;
            (self.cols.tail.get(i), self.cols.tail.wire_len[i])
        } else {
            let idx = self.next / self.cols.chunk_rows;
            self.ensure_chunk(idx);
            let i = self.next % self.cols.chunk_rows;
            (self.batch.record(i), self.batch.wire_len(i))
        };
        self.next += 1;
        Some(out)
    }
}

fn kind_of(p: &RecordedPayload) -> MsgKind {
    match p {
        RecordedPayload::Ping => MsgKind::Ping,
        RecordedPayload::Pong { .. } => MsgKind::Pong,
        RecordedPayload::Query { .. } => MsgKind::Query,
        RecordedPayload::QueryHit { .. } => MsgKind::QueryHit,
        RecordedPayload::Bye => MsgKind::Bye,
    }
}

impl<'a> IntoIterator for &'a MessageColumns {
    type Item = MessageRecord;
    type IntoIter = Box<dyn Iterator<Item = MessageRecord> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl FromIterator<MessageRecord> for MessageColumns {
    fn from_iter<I: IntoIterator<Item = MessageRecord>>(iter: I) -> Self {
        let mut cols = MessageColumns::new();
        for rec in iter {
            cols.push(rec);
        }
        cols
    }
}

impl Extend<MessageRecord> for MessageColumns {
    fn extend<I: IntoIterator<Item = MessageRecord>>(&mut self, iter: I) {
        for rec in iter {
            self.push(rec);
        }
    }
}

/// Serializes as the sequence of reconstructed records, so the serde form
/// (and with it any JSON representation) is identical to the old
/// `Vec<MessageRecord>` layout — compression never reaches the wire.
impl Serialize for MessageColumns {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(self.iter().map(|r| r.to_value()).collect())
    }
}

impl Deserialize for MessageColumns {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Array(items) => {
                let mut cols = MessageColumns::with_capacity(items.len());
                for item in items {
                    cols.push(MessageRecord::from_value(item)?);
                }
                Ok(cols)
            }
            other => Err(serde::Error::msg(format!(
                "expected array of message records, found {}",
                other.type_name()
            ))),
        }
    }
}

/// A complete measurement trace: connection records plus message columns.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// One record per direct connection, indexed by [`SessionId`].
    pub connections: Vec<ConnectionRecord>,
    /// All received messages, in arrival order (columnar layout).
    pub messages: MessageColumns,
    /// Total wire size of the recorded messages, in bytes — charged by the
    /// collector via `gnutella::wire::encoded_len` regardless of whether
    /// the frames traveled typed or byte-encoded. An in-memory provenance
    /// statistic: it is not part of the JSONL interchange format (readers
    /// of old traces see 0).
    #[serde(skip)]
    pub wire_bytes: u64,
}

/// Equality compares the recorded data — connections and messages — only.
/// `wire_bytes` (and the per-row `wire_len` column) is in-memory
/// provenance that does not survive the JSONL interchange format, so it
/// does not participate: a deserialized trace equals the one that wrote it.
impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.connections == other.connections && self.messages == other.messages
    }
}

/// One line of the JSONL interchange format.
#[derive(Debug, Serialize, Deserialize)]
#[serde(tag = "t", rename_all = "snake_case")]
enum TraceLine {
    Conn(ConnectionRecord),
    Msg(MessageRecord),
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Empty trace with pre-reserved capacity, for collectors that can
    /// estimate campaign volume up front. The message store only
    /// reserves its flat tail (one chunk) and chunk directory — rows
    /// beyond the first chunk live compressed, so a huge `messages`
    /// estimate no longer pins gigabytes of flat columns.
    pub fn with_capacity(connections: usize, messages: usize) -> Self {
        Trace {
            connections: Vec::with_capacity(connections),
            messages: MessageColumns::with_capacity(messages),
            wire_bytes: 0,
        }
    }

    /// Look up a connection record.
    pub fn connection(&self, id: SessionId) -> Option<&ConnectionRecord> {
        self.connections.get(id.0 as usize)
    }

    /// Overall characteristics (the Table 1 reproduction).
    pub fn stats(&self) -> TraceStats {
        TraceStats::of(self)
    }

    /// Resident bytes held by this trace: the message store (tail,
    /// resident chunks, scratch) plus the connection records and their
    /// heap strings. Spilled chunk extents are on disk and not counted.
    pub fn mem_bytes(&self) -> u64 {
        let conns = (self.connections.capacity() * std::mem::size_of::<ConnectionRecord>()) as u64
            + self
                .connections
                .iter()
                .map(|c| c.user_agent.capacity() as u64)
                .sum::<u64>();
        conns + self.messages.mem_bytes()
    }

    /// Drop scratch allocations before snapshotting or unwrapping (see
    /// [`MessageColumns::compact`]). Also returns the connection
    /// vector's over-reservation: the driver pre-reserves for the
    /// *expected* arrival count, but cap-bound scales admit a small
    /// fraction of arrivals, leaving most of that capacity dead — at
    /// paper scale ≈300 MiB for 4.36 M expected vs 361 k admitted.
    pub fn compact(&mut self) {
        self.messages.compact();
        self.connections.shrink_to_fit();
    }

    /// Serialize as JSON lines: connection records first, then messages.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        for c in &self.connections {
            serde_json::to_writer(&mut w, &TraceLine::Conn(c.clone()))?;
            w.write_all(b"\n")?;
        }
        for m in self.messages.iter() {
            serde_json::to_writer(&mut w, &TraceLine::Msg(m))?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Read back a JSONL trace.
    ///
    /// Connection records are re-indexed by their embedded [`SessionId`];
    /// message order is preserved.
    pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<Trace> {
        let mut connections: Vec<Option<ConnectionRecord>> = Vec::new();
        let mut messages = MessageColumns::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let parsed: TraceLine = serde_json::from_str(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            match parsed {
                TraceLine::Conn(c) => {
                    let idx = c.id.0 as usize;
                    if connections.len() <= idx {
                        connections.resize(idx + 1, None);
                    }
                    connections[idx] = Some(c);
                }
                TraceLine::Msg(m) => messages.push(m),
            }
        }
        let connections = connections
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                c.ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("missing connection record for session {i}"),
                    )
                })
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Trace {
            connections,
            messages,
            wire_bytes: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordedPayload;
    use simnet::SimTime;
    use std::net::Ipv4Addr;

    fn test_guid() -> gnutella::Guid {
        gnutella::Guid([7; 16])
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..3u64 {
            t.connections.push(ConnectionRecord {
                id: SessionId(i),
                addr: Ipv4Addr::new(24, 0, 0, i as u8 + 1),
                user_agent: format!("Client/{i}"),
                ultrapeer: i % 2 == 0,
                start: SimTime::from_secs(i * 100),
                end: Some(SimTime::from_secs(i * 100 + 70)),
                closed_by_probe: i == 2,
            });
            t.messages.push(MessageRecord {
                session: SessionId(i),
                guid: test_guid(),
                at: SimTime::from_secs(i * 100 + 5),
                hops: 1,
                ttl: 6,
                payload: RecordedPayload::Query {
                    text: format!("song {i}").into(),
                    sha1: false,
                },
            });
        }
        t
    }

    /// Records covering every kind, enough to cross small chunk sizes.
    fn varied_records(n: usize) -> Vec<MessageRecord> {
        (0..n)
            .map(|i| {
                let payload = match i % 5 {
                    0 => RecordedPayload::Ping,
                    1 => RecordedPayload::Pong {
                        addr: Ipv4Addr::new(10, 0, (i / 256) as u8, (i % 256) as u8),
                        shared_files: (i * 37) as u32,
                    },
                    2 => RecordedPayload::Query {
                        text: format!("chunk song {}", i % 11).into(),
                        sha1: i % 3 == 0,
                    },
                    3 => RecordedPayload::QueryHit {
                        addr: Ipv4Addr::new(82, 1, 2, (i % 256) as u8),
                        results: (i % 250) as u8,
                    },
                    _ => RecordedPayload::Bye,
                };
                MessageRecord {
                    session: SessionId((i % 7) as u64),
                    guid: gnutella::Guid([(i % 251) as u8; 16]),
                    at: SimTime::from_millis(1_000 + (i as u64) * 13),
                    hops: (i % 8) as u8,
                    ttl: (7 - i % 8) as u8,
                    payload,
                }
            })
            .collect()
    }

    #[test]
    fn jsonl_round_trip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    /// The JSONL interchange format is frozen: this golden output was
    /// captured from the row-oriented (pre-columnar) store and must stay
    /// byte-identical so old traces and external readers keep working.
    #[test]
    fn jsonl_matches_row_store_golden() {
        let mut t = Trace::new();
        t.connections.push(ConnectionRecord {
            id: SessionId(0),
            addr: Ipv4Addr::new(24, 10, 20, 30),
            user_agent: "Mutella/0.4.5".into(),
            ultrapeer: true,
            start: SimTime::from_millis(1_500),
            end: Some(SimTime::from_millis(400_000)),
            closed_by_probe: true,
        });
        t.connections.push(ConnectionRecord {
            id: SessionId(1),
            addr: Ipv4Addr::new(82, 1, 2, 3),
            user_agent: "LimeWire/4.2".into(),
            ultrapeer: false,
            start: SimTime::from_millis(2_250),
            end: None,
            closed_by_probe: false,
        });
        let g = test_guid();
        let mk = |at: u64, hops: u8, ttl: u8, session: u64, payload| MessageRecord {
            session: SessionId(session),
            guid: g,
            at: SimTime::from_millis(at),
            hops,
            ttl,
            payload,
        };
        t.messages.push(mk(3_000, 1, 6, 0, RecordedPayload::Ping));
        t.messages.push(mk(
            4_100,
            2,
            5,
            0,
            RecordedPayload::Pong {
                addr: Ipv4Addr::new(10, 0, 0, 9),
                shared_files: 340,
            },
        ));
        t.messages.push(mk(
            5_000,
            1,
            7,
            1,
            RecordedPayload::Query {
                text: "metallica one".into(),
                sha1: true,
            },
        ));
        t.messages.push(mk(
            6_000,
            3,
            4,
            1,
            RecordedPayload::QueryHit {
                addr: Ipv4Addr::new(24, 5, 6, 7),
                results: 12,
            },
        ));
        t.messages.push(mk(7_000, 1, 1, 0, RecordedPayload::Bye));

        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let golden = concat!(
            r#"{"t":"conn","id":0,"addr":"24.10.20.30","user_agent":"Mutella/0.4.5","ultrapeer":true,"start":1500,"end":400000,"closed_by_probe":true}"#,
            "\n",
            r#"{"t":"conn","id":1,"addr":"82.1.2.3","user_agent":"LimeWire/4.2","ultrapeer":false,"start":2250,"end":null,"closed_by_probe":false}"#,
            "\n",
            r#"{"t":"msg","session":0,"guid":[7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7],"at":3000,"hops":1,"ttl":6,"payload":"Ping"}"#,
            "\n",
            r#"{"t":"msg","session":0,"guid":[7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7],"at":4100,"hops":2,"ttl":5,"payload":{"Pong":{"addr":"10.0.0.9","shared_files":340}}}"#,
            "\n",
            r#"{"t":"msg","session":1,"guid":[7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7],"at":5000,"hops":1,"ttl":7,"payload":{"Query":{"text":"metallica one","sha1":true}}}"#,
            "\n",
            r#"{"t":"msg","session":1,"guid":[7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7],"at":6000,"hops":3,"ttl":4,"payload":{"QueryHit":{"addr":"24.5.6.7","results":12}}}"#,
            "\n",
            r#"{"t":"msg","session":0,"guid":[7,7,7,7,7,7,7,7,7,7,7,7,7,7,7,7],"at":7000,"hops":1,"ttl":1,"payload":"Bye"}"#,
            "\n",
        );
        assert_eq!(String::from_utf8(buf).unwrap(), golden);
    }

    #[test]
    fn columns_round_trip_every_kind() {
        let g = test_guid();
        let records = vec![
            MessageRecord {
                session: SessionId(3),
                guid: g,
                at: SimTime::from_millis(10),
                hops: 1,
                ttl: 6,
                payload: RecordedPayload::Ping,
            },
            MessageRecord {
                session: SessionId(1),
                guid: g,
                at: SimTime::from_millis(20),
                hops: 2,
                ttl: 5,
                payload: RecordedPayload::Pong {
                    addr: Ipv4Addr::new(1, 2, 3, 4),
                    shared_files: 99,
                },
            },
            MessageRecord {
                session: SessionId(0),
                guid: g,
                at: SimTime::from_millis(30),
                hops: 1,
                ttl: 7,
                payload: RecordedPayload::Query {
                    text: "q".into(),
                    sha1: true,
                },
            },
            MessageRecord {
                session: SessionId(2),
                guid: g,
                at: SimTime::from_millis(40),
                hops: 4,
                ttl: 3,
                payload: RecordedPayload::QueryHit {
                    addr: Ipv4Addr::new(9, 8, 7, 6),
                    results: 200,
                },
            },
            MessageRecord {
                session: SessionId(0),
                guid: g,
                at: SimTime::from_millis(50),
                hops: 1,
                ttl: 1,
                payload: RecordedPayload::Bye,
            },
        ];
        let cols: MessageColumns = records.iter().copied().collect();
        assert_eq!(cols.len(), records.len());
        let back: Vec<MessageRecord> = cols.iter().collect();
        assert_eq!(back, records);
        // Random access agrees with iteration.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(cols.get(i), *r);
        }
    }

    #[test]
    fn sealed_chunks_round_trip_all_access_paths() {
        let records = varied_records(1_000);
        for chunk_rows in [1usize, 3, 16, 256] {
            let mut cols = MessageColumns::new();
            cols.configure_chunks(chunk_rows, None);
            for (i, r) in records.iter().enumerate() {
                cols.push_with_wire(*r, (i % 97) as u32);
            }
            assert_eq!(cols.len(), records.len());
            assert_eq!(cols.sealed_chunks(), records.len() / chunk_rows);
            // Section headers dominate degenerate chunk sizes; only
            // realistic chunks must actually compress.
            if chunk_rows >= 256 {
                assert!(cols.compression_ratio().unwrap() > 1.0);
            }

            // Iteration (cursor path).
            let back: Vec<MessageRecord> = cols.iter().collect();
            assert_eq!(back, records, "chunk_rows {chunk_rows}");

            // Random access (cached path), in an order that thrashes the
            // cache across chunk boundaries.
            for i in (0..records.len()).rev() {
                assert_eq!(cols.get(i), records[i]);
                assert_eq!(cols.wire_len(i), (i % 97) as u32);
                assert_eq!(cols.time_at(i), records[i].at);
                assert_eq!(cols.hops_at(i), records[i].hops);
            }

            // Batch visitation covers every row in order.
            let mut n = 0usize;
            cols.for_each_batch(|b| {
                for i in 0..b.rows() {
                    assert_eq!(b.record(i), records[n]);
                    n += 1;
                }
            });
            assert_eq!(n, records.len());
        }
    }

    #[test]
    fn spilled_chunks_read_back_identically() {
        let dir = std::env::temp_dir().join("p2pq-store-test-spill");
        let records = varied_records(500);
        let mut plain = MessageColumns::new();
        plain.configure_chunks(64, None);
        let mut spilled = MessageColumns::new();
        spilled.configure_chunks(64, Some(dir));
        for r in &records {
            plain.push(*r);
            spilled.push(*r);
        }
        assert!(spilled.spill_bytes_written() > 0);
        assert_eq!(spilled.retained_chunk_bytes(), 0);
        assert!(spilled.mem_bytes() < plain.mem_bytes());
        assert_eq!(plain, spilled);
        let a: Vec<MessageRecord> = plain.iter().collect();
        let b: Vec<MessageRecord> = spilled.iter().collect();
        assert_eq!(a, b);
        assert_eq!(a, records);

        // Clones share the spill file and stay readable side by side.
        let cloned = spilled.clone();
        let c: Vec<MessageRecord> = cloned.iter().collect();
        assert_eq!(c, records);
    }

    #[test]
    fn wire_len_excluded_from_equality() {
        let rec = MessageRecord {
            session: SessionId(0),
            guid: test_guid(),
            at: SimTime::from_millis(5),
            hops: 1,
            ttl: 6,
            payload: RecordedPayload::Ping,
        };
        let mut a = MessageColumns::new();
        a.push_with_wire(rec, 23);
        let mut b = MessageColumns::new();
        b.push(rec);
        assert_eq!(a, b);
        assert_eq!(a.wire_len(0), 23);
        assert_eq!(b.wire_len(0), 0);
    }

    #[test]
    fn one_hop_query_visitor_matches_filtered_iteration() {
        let t = sample_trace();
        let mut seen = Vec::new();
        t.messages
            .for_each_one_hop_query(|sid, at, text, sha1| seen.push((sid, at, text, sha1)));
        let expected: Vec<_> = t
            .messages
            .iter()
            .filter(|m| m.is_one_hop_query())
            .map(|m| match m.payload {
                RecordedPayload::Query { text, sha1 } => (m.session, m.at, text, sha1),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn one_hop_query_visitor_crosses_chunk_boundaries() {
        let records = varied_records(300);
        let mut cols = MessageColumns::new();
        cols.configure_chunks(7, None);
        for r in &records {
            cols.push(*r);
        }
        let mut seen = Vec::new();
        cols.for_each_one_hop_query(|sid, at, text, sha1| seen.push((sid, at, text, sha1)));
        let expected: Vec<_> = records
            .iter()
            .filter(|m| m.is_one_hop_query())
            .map(|m| match m.payload {
                RecordedPayload::Query { text, sha1 } => (m.session, m.at, text, sha1),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn mem_bytes_counts_columns_and_strings() {
        let t = sample_trace();
        assert!(t.mem_bytes() > 0);
        let empty = Trace::new();
        assert_eq!(empty.messages.mem_bytes(), 0);
    }

    #[test]
    fn compact_drops_scratch_capacity() {
        let records = varied_records(200);
        let mut cols = MessageColumns::new();
        cols.configure_chunks(32, None);
        for r in &records {
            cols.push(*r);
        }
        // Populate the decode cache, then compact it away.
        let _ = cols.get(0);
        let before = cols.mem_bytes();
        cols.compact();
        assert!(cols.mem_bytes() < before);
        // Data is untouched.
        let back: Vec<MessageRecord> = cols.iter().collect();
        assert_eq!(back, records);
    }

    #[test]
    fn read_tolerates_blank_lines_and_reorders_connections() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        // Shuffle: put messages before connections and add blank lines.
        let text = String::from_utf8(buf).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.reverse();
        let shuffled = format!("\n{}\n\n", lines.join("\n\n"));
        let back = Trace::read_jsonl(shuffled.as_bytes()).unwrap();
        assert_eq!(back.connections, t.connections);
        assert_eq!(back.messages.len(), t.messages.len());
    }

    #[test]
    fn read_rejects_gap_in_sessions() {
        let mut t = sample_trace();
        t.connections.remove(1);
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        assert!(Trace::read_jsonl(buf.as_slice()).is_err());
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(Trace::read_jsonl("not json\n".as_bytes()).is_err());
    }

    #[test]
    fn connection_lookup() {
        let t = sample_trace();
        assert_eq!(t.connection(SessionId(1)).unwrap().user_agent, "Client/1");
        assert!(t.connection(SessionId(99)).is_none());
    }
}
