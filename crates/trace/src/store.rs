//! In-memory trace store with JSONL (de)serialization.

use crate::record::{ConnectionRecord, MessageRecord, SessionId};
use crate::stats::TraceStats;
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// A complete measurement trace: connection records plus message records.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// One record per direct connection, indexed by [`SessionId`].
    pub connections: Vec<ConnectionRecord>,
    /// All received messages, in arrival order.
    pub messages: Vec<MessageRecord>,
    /// Total wire size of the recorded messages, in bytes — charged by the
    /// collector via `gnutella::wire::encoded_len` regardless of whether
    /// the frames traveled typed or byte-encoded. An in-memory provenance
    /// statistic: it is not part of the JSONL interchange format (readers
    /// of old traces see 0).
    #[serde(skip)]
    pub wire_bytes: u64,
}

/// Equality compares the recorded data — connections and messages — only.
/// `wire_bytes` is in-memory provenance that does not survive the JSONL
/// interchange format, so it does not participate: a deserialized trace
/// equals the one that wrote it.
impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.connections == other.connections && self.messages == other.messages
    }
}

/// One line of the JSONL interchange format.
#[derive(Debug, Serialize, Deserialize)]
#[serde(tag = "t", rename_all = "snake_case")]
enum TraceLine {
    Conn(ConnectionRecord),
    Msg(MessageRecord),
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Empty trace with pre-reserved capacity, for collectors that can
    /// estimate campaign volume up front (avoids repeated reallocation of
    /// the hot message vector during a run).
    pub fn with_capacity(connections: usize, messages: usize) -> Self {
        Trace {
            connections: Vec::with_capacity(connections),
            messages: Vec::with_capacity(messages),
            wire_bytes: 0,
        }
    }

    /// Look up a connection record.
    pub fn connection(&self, id: SessionId) -> Option<&ConnectionRecord> {
        self.connections.get(id.0 as usize)
    }

    /// Overall characteristics (the Table 1 reproduction).
    pub fn stats(&self) -> TraceStats {
        TraceStats::of(self)
    }

    /// Serialize as JSON lines: connection records first, then messages.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        for c in &self.connections {
            serde_json::to_writer(&mut w, &TraceLine::Conn(c.clone()))?;
            w.write_all(b"\n")?;
        }
        for m in &self.messages {
            serde_json::to_writer(&mut w, &TraceLine::Msg(m.clone()))?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Read back a JSONL trace.
    ///
    /// Connection records are re-indexed by their embedded [`SessionId`];
    /// message order is preserved.
    pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<Trace> {
        let mut connections: Vec<Option<ConnectionRecord>> = Vec::new();
        let mut messages = Vec::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let parsed: TraceLine = serde_json::from_str(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            match parsed {
                TraceLine::Conn(c) => {
                    let idx = c.id.0 as usize;
                    if connections.len() <= idx {
                        connections.resize(idx + 1, None);
                    }
                    connections[idx] = Some(c);
                }
                TraceLine::Msg(m) => messages.push(m),
            }
        }
        let connections = connections
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                c.ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("missing connection record for session {i}"),
                    )
                })
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Trace {
            connections,
            messages,
            wire_bytes: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordedPayload;
    use simnet::SimTime;
    use std::net::Ipv4Addr;

    fn test_guid() -> gnutella::Guid {
        gnutella::Guid([7; 16])
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..3u64 {
            t.connections.push(ConnectionRecord {
                id: SessionId(i),
                addr: Ipv4Addr::new(24, 0, 0, i as u8 + 1),
                user_agent: format!("Client/{i}"),
                ultrapeer: i % 2 == 0,
                start: SimTime::from_secs(i * 100),
                end: Some(SimTime::from_secs(i * 100 + 70)),
                closed_by_probe: i == 2,
            });
            t.messages.push(MessageRecord {
                session: SessionId(i),
                guid: test_guid(),
                at: SimTime::from_secs(i * 100 + 5),
                hops: 1,
                ttl: 6,
                payload: RecordedPayload::Query {
                    text: format!("song {i}").into(),
                    sha1: false,
                },
            });
        }
        t
    }

    #[test]
    fn jsonl_round_trip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn read_tolerates_blank_lines_and_reorders_connections() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        // Shuffle: put messages before connections and add blank lines.
        let text = String::from_utf8(buf).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.reverse();
        let shuffled = format!("\n{}\n\n", lines.join("\n\n"));
        let back = Trace::read_jsonl(shuffled.as_bytes()).unwrap();
        assert_eq!(back.connections, t.connections);
        assert_eq!(back.messages.len(), t.messages.len());
    }

    #[test]
    fn read_rejects_gap_in_sessions() {
        let mut t = sample_trace();
        t.connections.remove(1);
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        assert!(Trace::read_jsonl(buf.as_slice()).is_err());
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(Trace::read_jsonl("not json\n".as_bytes()).is_err());
    }

    #[test]
    fn connection_lookup() {
        let t = sample_trace();
        assert_eq!(t.connection(SessionId(1)).unwrap().user_agent, "Client/1");
        assert!(t.connection(SessionId(99)).is_none());
    }
}
