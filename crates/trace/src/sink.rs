//! Streaming trace consumers.
//!
//! The collector does not have to materialize a [`Trace`]: it talks to a
//! [`TraceSink`], which receives the connection lifecycle events and the
//! message batches the collector already drains in ~8k chunks. A sink can
//! retain everything ([`Trace`] itself implements the trait — `retain`
//! mode), fold the stream into online aggregates without keeping rows
//! (`streaming` mode, see `analysis::streaming`), or both at once via
//! [`Fanout`].
//!
//! Delivery contract (what the collector guarantees):
//!
//! * `on_connect` is called once per session, before any of its batches;
//! * batches arrive in arrival order; every message of a session is
//!   delivered in some batch **before** that session's `on_close` (the
//!   collector drains its pending buffer when it finalizes a session);
//! * `on_close` is called at most once per session; sessions still open
//!   when the collector is dropped never see it.

use crate::record::{ConnectionRecord, MessageRecord, SessionId};
use crate::store::Trace;
use parking_lot::Mutex;
use simnet::SimTime;
use std::sync::Arc;

/// A consumer of the collector's record stream.
pub trait TraceSink {
    /// A session completed its handshake; `rec.end` is `None` at this
    /// point and `rec.id` values arrive densely from 0 per collector.
    fn on_connect(&mut self, rec: ConnectionRecord);

    /// A drained chunk of message records, in arrival order.
    /// `wire_lens[i]` is the encoded wire length of `records[i]`.
    fn on_batch(&mut self, records: &[MessageRecord], wire_lens: &[u32]);

    /// Session `id` ended at `end` (`by_probe` per §3.2 idle policy).
    fn on_close(&mut self, id: SessionId, end: SimTime, by_probe: bool);
}

/// The shared, lock-protected handle the collector writes through.
pub type SharedSink = Arc<Mutex<dyn TraceSink + Send>>;

/// Retain mode: the trace itself consumes the stream.
impl TraceSink for Trace {
    fn on_connect(&mut self, rec: ConnectionRecord) {
        debug_assert_eq!(rec.id.0 as usize, self.connections.len());
        self.connections.push(rec);
    }

    fn on_batch(&mut self, records: &[MessageRecord], wire_lens: &[u32]) {
        // Whole-batch append: the store seals full chunks as the batch
        // lands (the collector's 8k drains divide the 64k chunk size, so
        // seals align with drain boundaries).
        self.messages.push_batch(records, wire_lens);
        self.wire_bytes += wire_lens.iter().map(|&w| u64::from(w)).sum::<u64>();
    }

    fn on_close(&mut self, id: SessionId, end: SimTime, by_probe: bool) {
        if let Some(rec) = self.connections.get_mut(id.0 as usize) {
            rec.end = Some(end);
            rec.closed_by_probe = by_probe;
        }
    }
}

/// Tee: forwards every event to each registered sink, in registration
/// order. Lets one campaign retain the trace *and* feed streaming
/// aggregators — the equivalence tests lean on this.
#[derive(Default)]
pub struct Fanout {
    sinks: Vec<SharedSink>,
}

impl Fanout {
    /// Empty fan-out (drops everything until sinks are registered).
    pub fn new() -> Self {
        Fanout::default()
    }

    /// Register a downstream sink.
    pub fn register(&mut self, sink: SharedSink) {
        self.sinks.push(sink);
    }
}

impl TraceSink for Fanout {
    fn on_connect(&mut self, rec: ConnectionRecord) {
        for s in &self.sinks {
            s.lock().on_connect(rec.clone());
        }
    }

    fn on_batch(&mut self, records: &[MessageRecord], wire_lens: &[u32]) {
        for s in &self.sinks {
            s.lock().on_batch(records, wire_lens);
        }
    }

    fn on_close(&mut self, id: SessionId, end: SimTime, by_probe: bool) {
        for s in &self.sinks {
            s.lock().on_close(id, end, by_probe);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordedPayload;
    use std::net::Ipv4Addr;

    fn conn(id: u64) -> ConnectionRecord {
        ConnectionRecord {
            id: SessionId(id),
            addr: Ipv4Addr::new(24, 0, 0, 1),
            user_agent: "X/1".into(),
            ultrapeer: false,
            start: SimTime::from_secs(id),
            end: None,
            closed_by_probe: false,
        }
    }

    fn msg(sid: u64, at: u64) -> MessageRecord {
        MessageRecord {
            session: SessionId(sid),
            guid: gnutella::Guid([1; 16]),
            at: SimTime::from_secs(at),
            hops: 1,
            ttl: 6,
            payload: RecordedPayload::Ping,
        }
    }

    #[test]
    fn trace_as_sink_accumulates_stream() {
        let mut t = Trace::new();
        t.on_connect(conn(0));
        t.on_batch(&[msg(0, 1), msg(0, 2)], &[23, 23]);
        t.on_close(SessionId(0), SimTime::from_secs(90), true);
        assert_eq!(t.connections.len(), 1);
        assert_eq!(t.messages.len(), 2);
        assert_eq!(t.wire_bytes, 46);
        assert_eq!(t.connections[0].end, Some(SimTime::from_secs(90)));
        assert!(t.connections[0].closed_by_probe);
    }

    #[test]
    fn fanout_delivers_to_all_sinks() {
        let a = Arc::new(Mutex::new(Trace::new()));
        let b = Arc::new(Mutex::new(Trace::new()));
        let mut tee = Fanout::new();
        tee.register(a.clone());
        tee.register(b.clone());
        tee.on_connect(conn(0));
        tee.on_batch(&[msg(0, 1)], &[23]);
        tee.on_close(SessionId(0), SimTime::from_secs(5), false);
        assert_eq!(*a.lock(), *b.lock());
        assert_eq!(a.lock().messages.len(), 1);
    }
}
