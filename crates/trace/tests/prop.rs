//! Property tests for trace records and (de)serialization.

use gnutella::Guid;
use proptest::prelude::*;
use simnet::SimTime;
use std::net::Ipv4Addr;
use trace::{ConnectionRecord, MessageRecord, RecordedPayload, SessionId, Sessions, Trace};

fn arb_payload() -> impl Strategy<Value = RecordedPayload> {
    prop_oneof![
        Just(RecordedPayload::Ping),
        Just(RecordedPayload::Bye),
        (any::<[u8; 4]>(), any::<u32>()).prop_map(|(ip, files)| RecordedPayload::Pong {
            addr: ip.into(),
            shared_files: files,
        }),
        ("[a-z0-9 ]{0,24}", any::<bool>()).prop_map(|(text, sha1)| RecordedPayload::Query {
            text: text.into(),
            sha1,
        }),
        (any::<[u8; 4]>(), any::<u8>()).prop_map(|(ip, results)| RecordedPayload::QueryHit {
            addr: ip.into(),
            results,
        }),
    ]
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    let conns = proptest::collection::vec(
        (
            any::<[u8; 4]>(),
            any::<bool>(),
            0u64..100_000,
            1u64..10_000,
            any::<bool>(),
        ),
        1..12,
    );
    (
        conns,
        proptest::collection::vec(
            (
                any::<[u8; 16]>(),
                0u8..8,
                0u8..8,
                0u64..200_000,
                arb_payload(),
            ),
            0..40,
        ),
    )
        .prop_map(|(conns, msgs)| {
            let n = conns.len() as u64;
            let connections: Vec<ConnectionRecord> = conns
                .into_iter()
                .enumerate()
                .map(|(i, (ip, up, start, dur, probe))| ConnectionRecord {
                    id: SessionId(i as u64),
                    addr: Ipv4Addr::from(ip),
                    user_agent: format!("Agent/{i}"),
                    ultrapeer: up,
                    start: SimTime::from_secs(start),
                    end: Some(SimTime::from_secs(start + dur)),
                    closed_by_probe: probe,
                })
                .collect();
            let messages = msgs
                .into_iter()
                .enumerate()
                .map(|(i, (guid, hops, ttl, at, payload))| MessageRecord {
                    session: SessionId(i as u64 % n),
                    guid: Guid(guid),
                    at: SimTime::from_secs(at),
                    hops,
                    ttl,
                    payload,
                })
                .collect();
            Trace {
                connections,
                messages,
                wire_bytes: 0,
            }
        })
}

/// Adversarial message columns for the chunk codec: tied timestamps,
/// saturated hops/TTL, raw (non-collector) GUIDs, query texts interned
/// fresh per case, and extreme PONG counters.
fn arb_adversarial_records() -> impl Strategy<Value = Vec<MessageRecord>> {
    let payload = prop_oneof![
        Just(RecordedPayload::Ping),
        Just(RecordedPayload::Bye),
        (
            any::<[u8; 4]>(),
            prop_oneof![Just(0u32), Just(u32::MAX), any::<u32>()]
        )
            .prop_map(|(ip, files)| RecordedPayload::Pong {
                addr: ip.into(),
                shared_files: files,
            }),
        ("[a-z0-9 ]{0,24}", any::<u32>(), any::<bool>()).prop_map(|(text, salt, sha1)| {
            // Salted text: most cases intern a QueryId no chunk has
            // dictionary-coded before.
            RecordedPayload::Query {
                text: format!("{text} {salt}").as_str().into(),
                sha1,
            }
        }),
        (any::<[u8; 4]>(), any::<u8>()).prop_map(|(ip, results)| RecordedPayload::QueryHit {
            addr: ip.into(),
            results,
        }),
    ];
    proptest::collection::vec(
        (
            any::<[u8; 16]>(),
            prop_oneof![Just(0u8), Just(1u8), Just(255u8), any::<u8>()],
            prop_oneof![Just(0u8), Just(255u8), any::<u8>()],
            // Times from a tiny set → runs of exact ties (width-0 packs).
            prop_oneof![Just(0u64), Just(1u64), Just(86_400_000u64), 0u64..50],
            payload,
            any::<u32>(),
        ),
        0..120,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(
                |(i, (guid, hops, ttl, at_ms, payload, _wire))| MessageRecord {
                    session: SessionId(i as u64 % 7),
                    guid: Guid(guid),
                    at: SimTime::from_millis(at_ms),
                    hops,
                    ttl,
                    payload,
                },
            )
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// The chunked store must agree with the flat (never-sealing) store
    /// on every access path, for any chunk size, with and without disk
    /// spill, under adversarial column values.
    #[test]
    fn chunked_store_matches_flat_on_adversarial_columns(
        records in arb_adversarial_records(),
        chunk_rows in 1usize..40,
        spill in any::<bool>(),
    ) {
        let wire_lens: Vec<u32> = (0..records.len()).map(|i| 23 + i as u32).collect();
        let mut flat = trace::MessageColumns::new();
        let mut chunked = trace::MessageColumns::new();
        let spill_dir = if spill {
            let dir = std::env::temp_dir().join("p2pq-prop-spill");
            std::fs::create_dir_all(&dir).unwrap();
            Some(dir)
        } else {
            None
        };
        chunked.configure_chunks(chunk_rows, spill_dir);
        flat.push_batch(&records, &wire_lens);
        chunked.push_batch(&records, &wire_lens);

        prop_assert_eq!(&chunked, &flat);
        prop_assert_eq!(chunked.len(), records.len());
        // Sequential decode matches the records pushed.
        let decoded: Vec<MessageRecord> = chunked.iter().collect();
        prop_assert_eq!(&decoded, &records);
        // Random access in reverse order (cache-hostile) agrees too.
        for i in (0..records.len()).rev() {
            prop_assert_eq!(chunked.get(i), records[i].clone());
            prop_assert_eq!(chunked.wire_len(i), wire_lens[i]);
        }
        // The selective query scan sees exactly the one-hop queries.
        let mut seen = Vec::new();
        chunked.for_each_one_hop_query(|sid, at, text, sha1| {
            seen.push((sid, at, text, sha1));
        });
        let expected: Vec<_> = records
            .iter()
            .filter_map(|m| match m.payload {
                RecordedPayload::Query { text, sha1 } if m.hops == 1 => {
                    Some((m.session, m.at, text, sha1))
                }
                _ => None,
            })
            .collect();
        prop_assert_eq!(seen, expected);
    }

    #[test]
    fn jsonl_round_trip(trace in arb_trace()) {
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(buf.as_slice()).unwrap();
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn stats_counts_are_conservative(trace in arb_trace()) {
        let s = trace.stats();
        let total = s.query_messages + s.queryhit_messages + s.ping_messages + s.pong_messages;
        // BYE messages are the only uncounted kind.
        prop_assert!(total <= trace.messages.len() as u64);
        prop_assert!(s.hop1_queries <= s.query_messages);
        prop_assert_eq!(s.direct_connections, trace.connections.len() as u64);
        prop_assert!(s.ultrapeer_connections <= s.direct_connections);
    }

    #[test]
    fn session_reconstruction_is_exhaustive(trace in arb_trace()) {
        let sessions = Sessions::from_trace(&trace);
        prop_assert_eq!(sessions.len(), trace.connections.len());
        // Every hop-1 query lands in exactly one view.
        let expected = trace.messages.iter().filter(|m| m.is_one_hop_query()).count();
        let got: usize = sessions.iter().map(|v| v.queries.len()).sum();
        prop_assert_eq!(got, expected);
        // Reconstruction preserves the trace's message order within each
        // session (collector-produced traces are time-sorted; arbitrary
        // traces keep whatever order they had, so only the count invariant
        // above is asserted on ordering-hostile inputs).
    }
}
