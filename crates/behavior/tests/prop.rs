//! Property tests for the generative behavior model.

use behavior::{QueryOrigin, SessionKind, SessionPlanner, Vocabulary, VocabularyConfig};
use geoip::Region;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn planner() -> SessionPlanner {
    let cfg = VocabularyConfig {
        daily_sizes: [300, 280, 60, 20, 3, 3, 2],
        n_days: 3,
        ..VocabularyConfig::default()
    };
    SessionPlanner::paper_default(Arc::new(Vocabulary::build(7, cfg)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn plans_are_well_formed(seed in any::<u64>(), hour in 0u32..24, region_idx in 0usize..4, day in 0usize..3) {
        let p = planner();
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = p.plan(day, hour, Region::ALL[region_idx], &mut rng);

        // Offsets sorted and inside the session.
        let mut prev = simnet::SimDuration::ZERO;
        for q in &plan.queries {
            prop_assert!(q.offset >= prev);
            prop_assert!(q.offset <= plan.duration);
            prev = q.offset;
        }
        // Kind-specific invariants.
        match plan.kind {
            SessionKind::Quick => {
                prop_assert!(plan.duration.as_secs_f64() < 64.0);
                prop_assert_eq!(plan.user_query_count, 0);
            }
            SessionKind::Passive => {
                prop_assert!(plan.queries.is_empty());
                prop_assert!(plan.duration.as_secs_f64() >= 64.0);
                // §4.4 support cap.
                prop_assert!(plan.duration.as_secs_f64() <= 50.0 * 3600.0);
            }
            SessionKind::Active => {
                let users = plan
                    .queries
                    .iter()
                    .filter(|q| q.origin == QueryOrigin::User)
                    .count() as u32;
                prop_assert_eq!(users, plan.user_query_count);
                prop_assert!(users >= 1);
            }
        }
        // SHA1 queries carry a urn and empty text; others carry text.
        for q in &plan.queries {
            if q.origin == QueryOrigin::AutoSha1 {
                prop_assert!(q.text.is_empty());
                prop_assert!(q.sha1.as_deref().unwrap().starts_with("urn:sha1:"));
            } else {
                prop_assert!(q.sha1.is_none());
                prop_assert!(!q.text.is_empty());
            }
        }
    }

    #[test]
    fn plans_are_deterministic(seed in any::<u64>()) {
        let p = planner();
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        prop_assert_eq!(
            p.plan(1, 12, Region::Europe, &mut a),
            p.plan(1, 12, Region::Europe, &mut b)
        );
    }

    #[test]
    fn vocabulary_day_sets_are_duplicate_free(seed in any::<u64>(), day in 0usize..3) {
        let cfg = VocabularyConfig {
            daily_sizes: [80, 70, 30, 10, 3, 3, 2],
            n_days: 3,
            ..VocabularyConfig::default()
        };
        let v = Vocabulary::build(seed, cfg);
        let set = v.day_set(behavior::QueryClass::NaOnly, day);
        let uniq: std::collections::HashSet<&str> = set.iter().copied().collect();
        prop_assert_eq!(uniq.len(), set.len());
    }
}
