//! Telemetry integration: the instrumentation must be provably free
//! (identical traces with profiling on and off) and the merged counters
//! must agree with the campaign's own ground truth.

use behavior::{
    run_population, run_population_sharded_with_stats, run_population_with_stats, Fidelity,
    PopulationConfig,
};
use telemetry::{Counter, Gauge};

/// Serialize the tests that toggle the process-global profiling flag or
/// read the global stage table, so they cannot race each other.
static PROFILE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn trace_identical_with_profiling_on_and_off() {
    let _guard = PROFILE_LOCK.lock().unwrap();
    let cfg = PopulationConfig::smoke();
    telemetry::profile::set_enabled(true);
    let on = run_population(&cfg);
    telemetry::profile::set_enabled(false);
    let off = run_population(&cfg);
    telemetry::profile::set_enabled(true);
    telemetry::profile::reset_stages();
    assert_eq!(
        on, off,
        "stage profiling must not perturb the observed trace"
    );
}

#[test]
fn stage_tree_covers_campaign() {
    let _guard = PROFILE_LOCK.lock().unwrap();
    telemetry::profile::set_enabled(true);
    telemetry::profile::reset_stages();
    let cfg = PopulationConfig::smoke();
    let _ = run_population_sharded_with_stats(&cfg, 2);
    let stages = telemetry::profile::take_stages();
    let tree = telemetry::stage_tree(&stages);
    let coverage = telemetry::profile::root_child_coverage(&tree, "campaign")
        .expect("campaign root must be recorded");
    assert!(
        coverage >= 0.9,
        "campaign children must cover ≥90 % of the campaign scope, got {coverage}"
    );
}

#[test]
fn sharded_telemetry_matches_unsharded_for_one_shard() {
    let cfg = PopulationConfig::smoke();
    let (_, unsharded) = run_population_with_stats(&cfg);
    let (_, sharded) = run_population_sharded_with_stats(&cfg, 1);
    assert_eq!(unsharded.telemetry, sharded.telemetry);
}

#[test]
fn campaign_counters_match_ground_truth() {
    let cfg = PopulationConfig::smoke();
    let (trace, stats) = run_population_sharded_with_stats(&cfg, 4);
    let t = &stats.telemetry;
    assert_eq!(
        t.counter(Counter::SinkRecords),
        trace.messages.len() as u64,
        "every recorded message passes the sink-batch boundary exactly once"
    );
    assert!(t.counter(Counter::SinkBatches) > 0);
    assert_eq!(t.counter(Counter::EventsPopped), stats.events_popped);
    assert_eq!(t.gauge(Gauge::PeakQueueLen), stats.peak_queue_len);
    // The batch-size histogram holds one observation per batch.
    let batches: u64 = t.hist(telemetry::Hist::SinkBatchSize).iter().sum();
    assert_eq!(batches, t.counter(Counter::SinkBatches));
}

/// Fixed-seed smoke-campaign regression: the event queue's pop order
/// fully determines the observed trace, so pinning the event count plus
/// an order-sensitive digest of the message stream catches any queue
/// change that silently reorders equal-time or cross-level pops. Re-pin
/// only after the simnet model-check property passes.
#[test]
fn smoke_campaign_events_and_order_pinned() {
    let cfg = PopulationConfig::smoke();
    let (trace, stats) = run_population_with_stats(&cfg);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fnv = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for m in trace.messages.iter() {
        fnv(m.session.0);
        fnv(m.at.as_millis());
    }
    assert_eq!(
        (
            stats.events_popped,
            trace.connections.len() as u64,
            trace.messages.len() as u64,
            h,
        ),
        (
            PINNED_EVENTS_POPPED,
            PINNED_CONNECTIONS,
            PINNED_MESSAGES,
            PINNED_MESSAGE_DIGEST,
        ),
        "smoke-campaign event count or observed message order changed"
    );
}

const PINNED_EVENTS_POPPED: u64 = 255_372;
const PINNED_CONNECTIONS: u64 = 504;
const PINNED_MESSAGES: u64 = 62_714;
const PINNED_MESSAGE_DIGEST: u64 = 15_634_722_281_550_164_242;

#[test]
fn full_and_hybrid_sink_counters_agree() {
    let mut cfg = PopulationConfig::smoke();
    cfg.fidelity = Fidelity::Full;
    let (full_trace, full) = run_population_sharded_with_stats(&cfg, 2);
    cfg.fidelity = Fidelity::Hybrid;
    let (hybrid_trace, hybrid) = run_population_sharded_with_stats(&cfg, 2);
    assert_eq!(full_trace, hybrid_trace);
    // Sink batch boundaries are part of the observed-trace contract, so
    // the sink-layer counters must match across fidelities too.
    for c in [Counter::SinkRecords, Counter::SinkBatches] {
        assert_eq!(
            full.telemetry.counter(c),
            hybrid.telemetry.counter(c),
            "{} must match across fidelities",
            c.name()
        );
    }
    assert_eq!(
        full.telemetry.hist(telemetry::Hist::SinkBatchSize),
        hybrid.telemetry.hist(telemetry::Hist::SinkBatchSize)
    );
}
