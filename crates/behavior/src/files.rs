//! Shared-files model (Figure 2).
//!
//! PONG messages advertise each peer's shared-library size; the paper
//! plots the fraction of peers sharing 0–100 files on a log scale
//! (Figure 2) and cites the free-rider phenomenon (Adar & Huberman): a
//! large fraction of peers share nothing.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Mixture model for a peer's advertised shared-file count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedFilesModel {
    /// Probability of a free rider (0 shared files). Adar & Huberman
    /// measured a substantial fraction; we default to 0.25.
    pub free_rider_prob: f64,
    /// Probability of a small library (1–10 files, uniform).
    pub small_prob: f64,
    /// Probability of a medium library (11–100, log-uniform).
    pub medium_prob: f64,
    // Remainder: large library (101–1000, log-uniform).
}

impl Default for SharedFilesModel {
    fn default() -> Self {
        SharedFilesModel {
            free_rider_prob: 0.25,
            small_prob: 0.25,
            medium_prob: 0.35,
        }
    }
}

impl SharedFilesModel {
    /// Draw a shared-file count.
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        let u: f64 = rng.gen();
        if u < self.free_rider_prob {
            0
        } else if u < self.free_rider_prob + self.small_prob {
            rng.gen_range(1..=10)
        } else if u < self.free_rider_prob + self.small_prob + self.medium_prob {
            log_uniform(rng, 11, 100)
        } else {
            log_uniform(rng, 101, 1000)
        }
    }

    /// Approximate shared kilobytes for a library of `files` files
    /// (≈4 MB median per file — 2004 MP3s).
    pub fn kb_for(&self, files: u32, rng: &mut StdRng) -> u32 {
        if files == 0 {
            return 0;
        }
        let per_file = rng.gen_range(2_000..=6_000);
        files.saturating_mul(per_file)
    }
}

fn log_uniform(rng: &mut StdRng, lo: u32, hi: u32) -> u32 {
    let l = (lo as f64).ln();
    let h = (hi as f64).ln();
    let x = (l + rng.gen::<f64>() * (h - l)).exp();
    (x.round() as u32).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn free_rider_fraction() {
        let m = SharedFilesModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let zeros = (0..n).filter(|_| m.sample(&mut rng) == 0).count();
        let frac = zeros as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "free riders {frac}");
    }

    #[test]
    fn counts_within_bounds_and_decreasing_density() {
        let m = SharedFilesModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut small = 0;
        let mut large = 0;
        for _ in 0..50_000 {
            let f = m.sample(&mut rng);
            assert!(f <= 1000);
            if (1..=10).contains(&f) {
                small += 1;
            }
            if f > 100 {
                large += 1;
            }
        }
        // Per-file density decreases: 10 small bins hold ~25 %, the 900
        // large bins hold ~15 %.
        assert!(small > large);
    }

    #[test]
    fn kb_scales_with_files() {
        let m = SharedFilesModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(m.kb_for(0, &mut rng), 0);
        let kb = m.kb_for(100, &mut rng);
        assert!((200_000..=600_000).contains(&kb));
    }
}
