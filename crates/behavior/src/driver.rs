//! Population driver: runs whole multi-day measurement campaigns.
//!
//! [`run_population`] wires everything together: a [`MeasurementPeer`]
//! collecting into a shared [`Trace`], a Poisson arrival process whose
//! regional mix follows the diurnal model, and one [`ClientPeer`] per
//! arriving session. The result is the synthetic equivalent of the
//! paper's 40-day trace, at a configurable scale.

use crate::arrivals::ArrivalProcess;
use crate::peer::{ClientPeer, PeerEnv, RelayRates};
use crate::session::SessionPlanner;
use crate::vocabulary::{Vocabulary, VocabularyConfig};
use geoip::{AddressAllocator, GeoDb};
use gnutella::net::NetMsg;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simnet::{Actor, Context, LatencyModel, NodeId, SimDuration, SimTime, Simulator};
use stats::rng::SeedSequence;
use std::sync::Arc;
use trace::{CollectorConfig, MeasurementPeer, Trace};

/// Configuration of a population run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Root seed; everything derives from it.
    pub seed: u64,
    /// Simulated days.
    pub days: f64,
    /// Mean connections per day (the paper's full scale is ≈109 000/day;
    /// the default is scaled down for tractable experiment turnaround).
    pub sessions_per_day: f64,
    /// Vocabulary configuration.
    pub vocab: VocabularyConfig,
    /// Relay-traffic rates for ultrapeer neighbors.
    pub relay: RelayRates,
    /// Measurement-peer fan-out cap.
    pub forward_fanout: usize,
    /// Maximum simultaneous connections at the measurement peer.
    pub max_connections: usize,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            seed: 42,
            days: 2.0,
            sessions_per_day: 6_000.0,
            vocab: VocabularyConfig::default(),
            relay: RelayRates::default(),
            forward_fanout: 4,
            max_connections: 200,
        }
    }
}

impl PopulationConfig {
    /// A small configuration for fast tests (a few hours, low rate).
    pub fn smoke() -> Self {
        PopulationConfig {
            seed: 7,
            days: 0.25,
            sessions_per_day: 2_000.0,
            vocab: VocabularyConfig {
                daily_sizes: [400, 380, 60, 20, 3, 3, 2],
                n_days: 2,
                ..VocabularyConfig::default()
            },
            ..PopulationConfig::default()
        }
    }
}

const TAG_HOUR: u64 = 1;
const TAG_ARRIVAL: u64 = 2;

/// The driver actor: schedules arrivals hour by hour and spawns peers.
struct PopulationDriver {
    server: NodeId,
    planner: SessionPlanner,
    arrivals: ArrivalProcess,
    env: PeerEnv,
    seq: SeedSequence,
    end: SimTime,
    spawned: u64,
    rng: rand::rngs::StdRng,
}

impl PopulationDriver {
    fn schedule_hour(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let offs = self.arrivals.arrivals_in_hour(&mut self.rng);
        for off in offs {
            if ctx.now() + off < self.end {
                ctx.set_timer(off, TAG_ARRIVAL);
            }
        }
        if ctx.now() + SimDuration::from_hours(1) < self.end {
            ctx.set_timer(SimDuration::from_hours(1), TAG_HOUR);
        }
    }

    fn spawn_peer(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let now = ctx.now();
        let hour = now.hour_of_day();
        let day = now.day() as usize;
        let mut rng = self.seq.rng_indexed("peer", self.spawned);
        self.spawned += 1;
        let region = self.planner.diurnal.sample_region(hour, &mut rng);
        let plan = self.planner.plan(day, hour, region, &mut rng);
        let addr = self.env.alloc.sample(region, &mut rng);
        let (ka_lo, ka_hi) = self.planner.params.keepalive_secs;
        let keepalive = SimDuration::from_secs_f64(rng.gen_range(ka_lo..ka_hi));
        let peer = ClientPeer::new(self.server, addr, plan, self.env.clone(), rng, keepalive);
        ctx.spawn(Box::new(peer));
    }
}

impl Actor for PopulationDriver {
    type Msg = NetMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, NetMsg>) {
        self.schedule_hour(ctx);
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, NetMsg>, _from: NodeId, _msg: NetMsg) {}

    fn on_timer(&mut self, ctx: &mut Context<'_, NetMsg>, tag: u64) {
        match tag {
            TAG_HOUR => self.schedule_hour(ctx),
            TAG_ARRIVAL => self.spawn_peer(ctx),
            _ => {}
        }
    }
}

/// Run a full population campaign and return the measurement trace.
pub fn run_population(cfg: &PopulationConfig) -> Trace {
    let seq = SeedSequence::new(cfg.seed);
    let vocab = Arc::new(Vocabulary::build(
        seq.derive_seed("vocab"),
        VocabularyConfig {
            n_days: (cfg.days.ceil() as usize).max(cfg.vocab.n_days.min(40)).max(1),
            ..cfg.vocab.clone()
        },
    ));
    let planner = SessionPlanner::paper_default(vocab.clone());
    let db = GeoDb::synthetic();
    let alloc = Arc::new(AddressAllocator::new(&db));
    let env = PeerEnv {
        vocab,
        diurnal: planner.diurnal,
        alloc,
        files: planner.files,
        relay: cfg.relay,
        latency: LatencyModel::intra_continent(),
    };

    let trace = Arc::new(parking_lot::Mutex::new(Trace::new()));
    let mut sim: Simulator<NetMsg> = Simulator::new(seq.derive_seed("engine"));
    let collector_cfg = CollectorConfig {
        max_connections: cfg.max_connections,
        forward_fanout: cfg.forward_fanout,
        seed: seq.derive_seed("collector"),
        ..CollectorConfig::default()
    };
    let server = sim.add_node(Box::new(MeasurementPeer::new(collector_cfg, trace.clone())));

    let end = SimTime::from_secs_f64(cfg.days * 86_400.0);
    let driver = PopulationDriver {
        server,
        planner,
        arrivals: ArrivalProcess::new(cfg.sessions_per_day),
        env,
        seq: seq.child("population"),
        end,
        spawned: 0,
        rng: seq.rng("arrivals"),
    };
    sim.add_node(Box::new(driver));

    // Run to the end plus a grace period so in-flight sessions (and the
    // probe-close chains of vanished peers) settle.
    sim.run_until(end + SimDuration::from_hours(2));

    Arc::try_unwrap(trace)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::Sessions;

    #[test]
    fn smoke_run_produces_plausible_trace() {
        let cfg = PopulationConfig::smoke();
        let trace = run_population(&cfg);
        let stats = trace.stats();

        // Expected ≈ 0.25 day × 2000/day = 500 connections.
        assert!(
            (300..800).contains(&(stats.direct_connections as usize)),
            "connections {}",
            stats.direct_connections
        );
        // Both node types represented (Table 1: ≈40 % ultrapeers).
        let uf = stats.ultrapeer_fraction();
        assert!((0.3..0.5).contains(&uf), "ultrapeer fraction {uf}");
        // Message mix: pings (keepalive) and pongs present; queries exceed
        // hop-1 queries (relayed traffic).
        assert!(stats.ping_messages > 0);
        assert!(stats.pong_messages > 0);
        // A small fraction of graceful closes send spec-compliant BYE.
        let byes = trace
            .messages
            .iter()
            .filter(|m| matches!(m.payload, trace::RecordedPayload::Bye))
            .count();
        assert!(byes > 0, "no BYE messages observed");
        assert!(stats.hop1_queries > 0);
        assert!(stats.query_messages > stats.hop1_queries);
        assert!(stats.queryhit_messages > 0);

        // Sessions reconstruct; most have ended within the grace period.
        let sessions = Sessions::from_trace(&trace);
        let ended = sessions.iter().filter(|s| s.end.is_some()).count();
        assert!(
            ended as f64 / sessions.len() as f64 > 0.95,
            "{} of {} ended",
            ended,
            sessions.len()
        );
        // ≈70 % of sessions are sub-64 s quick disconnects.
        let quick = sessions
            .iter()
            .filter(|s| {
                s.duration()
                    .map(|d| d.as_secs_f64() < 64.0)
                    .unwrap_or(false)
            })
            .count() as f64;
        let frac = quick / ended as f64;
        assert!((0.6..0.8).contains(&frac), "quick fraction {frac}");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let cfg = PopulationConfig {
            days: 0.05,
            sessions_per_day: 1_500.0,
            ..PopulationConfig::smoke()
        };
        let a = run_population(&cfg);
        let b = run_population(&cfg);
        assert_eq!(a, b, "same seed must produce identical traces");
        let mut cfg2 = cfg;
        cfg2.seed += 1;
        let c = run_population(&cfg2);
        assert_ne!(a, c);
    }

    #[test]
    fn probe_closures_overestimate_durations() {
        let trace = run_population(&PopulationConfig::smoke());
        // Vanished peers are probe-closed; the paper says most clients stop
        // silently, so a large share of sessions must be probe-closed.
        let probed = trace.connections.iter().filter(|c| c.closed_by_probe).count();
        let frac = probed as f64 / trace.connections.len() as f64;
        assert!(frac > 0.5, "probe-closed fraction {frac}");
    }
}
