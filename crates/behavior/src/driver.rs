//! Population driver: runs whole multi-day measurement campaigns.
//!
//! [`run_population`] wires everything together: a [`MeasurementPeer`]
//! collecting into a shared [`Trace`], a Poisson arrival process whose
//! regional mix follows the diurnal model, and one [`ClientPeer`] per
//! arriving session. The result is the synthetic equivalent of the
//! paper's 40-day trace, at a configurable scale.

use crate::arrivals::ArrivalProcess;
use crate::hybrid::{HybridShard, ShardOutcome};
use crate::peer::{ClientPeer, PeerEnv, RelayRates};
use crate::session::SessionPlanner;
use crate::vocabulary::{Vocabulary, VocabularyConfig};
use geoip::{AddressAllocator, GeoDb};
use gnutella::net::{NetMsg, Transport};
use rand::Rng;
use serde::{Deserialize, Serialize};
use simnet::{Actor, Context, LatencyModel, NodeId, SimDuration, SimTime, Simulator};
use stats::rng::SeedSequence;
use std::collections::VecDeque;
use std::sync::{Arc, Barrier};
use telemetry::{Counter, Gauge, Registry, Snapshot};
use trace::{CollectorConfig, MeasurementPeer, SharedSink, Trace};

/// Simulation fidelity of a campaign.
///
/// `Full` runs every peer as a simulator actor exchanging protocol
/// messages; `Hybrid` keeps full fidelity for everything the measurement
/// peer can observe and replaces the rest with flow-level statistical
/// emission (see [`crate::hybrid`]). The observed trace is bit-identical
/// between the two — `Hybrid` only removes work the trace can't see.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Fidelity {
    /// Full per-message actor simulation.
    #[default]
    Full,
    /// Hybrid flow-level simulation (identical observed trace).
    Hybrid,
}

/// Configuration of a population run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Root seed; everything derives from it.
    pub seed: u64,
    /// Simulated days.
    pub days: f64,
    /// Mean connections per day (the paper's full scale is ≈109 000/day;
    /// the default is scaled down for tractable experiment turnaround).
    pub sessions_per_day: f64,
    /// Vocabulary configuration.
    pub vocab: VocabularyConfig,
    /// Relay-traffic rates for ultrapeer neighbors.
    pub relay: RelayRates,
    /// Measurement-peer fan-out cap.
    pub forward_fanout: usize,
    /// Maximum simultaneous connections at the measurement peer.
    pub max_connections: usize,
    /// How frames travel between peers: typed (default, zero-copy) or
    /// byte-encoded through the wire codec. Traces are identical either
    /// way; `Bytes` exists for conformance and benchmarking.
    pub transport: Transport,
    /// Simulation fidelity; `Hybrid` produces the same observed trace at
    /// a fraction of the per-message cost.
    #[serde(default)]
    pub fidelity: Fidelity,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            seed: 42,
            days: 2.0,
            sessions_per_day: 6_000.0,
            vocab: VocabularyConfig::default(),
            relay: RelayRates::default(),
            forward_fanout: 4,
            max_connections: 200,
            transport: Transport::Typed,
            fidelity: Fidelity::Full,
        }
    }
}

impl PopulationConfig {
    /// A small configuration for fast tests (a few hours, low rate).
    pub fn smoke() -> Self {
        PopulationConfig {
            seed: 7,
            days: 0.25,
            sessions_per_day: 2_000.0,
            vocab: VocabularyConfig {
                daily_sizes: [400, 380, 60, 20, 3, 3, 2],
                n_days: 2,
                ..VocabularyConfig::default()
            },
            ..PopulationConfig::default()
        }
    }
}

/// Engine-level statistics of a whole campaign, aggregated across shards.
///
/// `events_popped` sums over shards (total work done); `peak_queue_len`
/// takes the per-shard maximum (the pressure any one heap actually saw,
/// which is what informs [`Simulator::with_capacity`] pre-sizing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Events popped off the simulator queue(s), summed across shards.
    pub events_popped: u64,
    /// Largest event-queue high-water mark observed by any shard.
    pub peak_queue_len: u64,
    /// Messages delivered to live nodes, summed across shards.
    pub delivered: u64,
    /// Messages dropped because the destination was gone.
    pub dropped: u64,
    /// Timer callbacks fired.
    pub timers_fired: u64,
    /// Nodes spawned over the lifetime of the run.
    pub spawned: u64,
    /// Messages a hybrid-fidelity run elided entirely (zero for full
    /// fidelity). `elided / (elided + modeled)` is the fraction of
    /// message work the far-cloud model avoided.
    #[serde(default)]
    pub hybrid_elided_msgs: u64,
    /// Peer→collector messages a hybrid-fidelity run still modeled as
    /// events (zero for full fidelity).
    #[serde(default)]
    pub hybrid_modeled_msgs: u64,
    /// Merged telemetry counters across shards: each shard's registry
    /// snapshot plus its engine-level quantities, folded at the same
    /// canonical join that merges traces ([`Snapshot::merge`] is
    /// associative and commutative, so the totals are independent of
    /// shard count for per-shard quantities and of join order always).
    #[serde(default)]
    pub telemetry: Snapshot,
}

impl CampaignStats {
    fn absorb(&mut self, s: &ShardOutcome) {
        self.events_popped += s.sim.events_popped;
        self.peak_queue_len = self.peak_queue_len.max(s.sim.peak_queue_len);
        self.delivered += s.sim.delivered;
        self.dropped += s.sim.dropped;
        self.timers_fired += s.sim.timers_fired;
        self.spawned += s.sim.spawned;
        self.hybrid_elided_msgs += s.elided_msgs;
        self.hybrid_modeled_msgs += s.modeled_msgs;
        // Fold the engine's plain counters into the shard snapshot, then
        // merge — the one place engine statistics and registry counters
        // meet, for either fidelity.
        let mut t = s.telemetry;
        t.add_counter(Counter::EventsPopped, s.sim.events_popped);
        t.add_counter(Counter::HeapSpills, s.sim.heap_spills);
        t.add_counter(Counter::HeapMigrations, s.sim.heap_migrations);
        t.add_counter(Counter::WheelCascades, s.sim.wheel_cascades);
        t.add_counter(Counter::HybridElided, s.elided_msgs);
        t.add_counter(Counter::HybridModeled, s.modeled_msgs);
        t.max_gauge(Gauge::PeakQueueLen, s.sim.peak_queue_len);
        self.telemetry.merge(&t);
    }
}

const TAG_HOUR: u64 = 1;
const TAG_ARRIVAL: u64 = 2;

/// The driver actor: schedules arrivals hour by hour and spawns peers.
struct PopulationDriver {
    server: NodeId,
    planner: SessionPlanner,
    arrivals: ArrivalProcess,
    env: PeerEnv,
    seq: SeedSequence,
    end: SimTime,
    spawned: u64,
    rng: rand::rngs::StdRng,
}

impl PopulationDriver {
    fn schedule_hour(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let offs = self.arrivals.arrivals_in_hour(&mut self.rng);
        for off in offs {
            if ctx.now() + off < self.end {
                ctx.set_timer(off, TAG_ARRIVAL);
            }
        }
        if ctx.now() + SimDuration::from_hours(1) < self.end {
            ctx.set_timer(SimDuration::from_hours(1), TAG_HOUR);
        }
    }

    fn spawn_peer(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let now = ctx.now();
        let hour = now.hour_of_day();
        let day = now.day() as usize;
        let mut rng = self.seq.rng_indexed("peer", self.spawned);
        self.spawned += 1;
        let region = self.planner.diurnal.sample_region(hour, &mut rng);
        let plan = self.planner.plan(day, hour, region, &mut rng);
        let addr = self.env.alloc.sample(region, &mut rng);
        let (ka_lo, ka_hi) = self.planner.params.keepalive_secs;
        let keepalive = SimDuration::from_secs_f64(rng.gen_range(ka_lo..ka_hi));
        let peer = ClientPeer::new(self.server, addr, plan, self.env.clone(), rng, keepalive);
        ctx.spawn(Box::new(peer));
    }
}

impl Actor for PopulationDriver {
    type Msg = NetMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, NetMsg>) {
        self.schedule_hour(ctx);
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, NetMsg>, _from: NodeId, _msg: NetMsg) {}

    fn on_timer(&mut self, ctx: &mut Context<'_, NetMsg>, tag: u64) {
        match tag {
            TAG_HOUR => self.schedule_hour(ctx),
            TAG_ARRIVAL => self.spawn_peer(ctx),
            _ => {}
        }
    }
}

/// Build the campaign vocabulary from the root sequence (shared across
/// shards so every shard draws from the same query population).
fn build_vocabulary(cfg: &PopulationConfig, seq: &SeedSequence) -> Vocabulary {
    Vocabulary::build(
        seq.derive_seed("vocab"),
        VocabularyConfig {
            n_days: (cfg.days.ceil() as usize)
                .max(cfg.vocab.n_days.min(40))
                .max(1),
            ..cfg.vocab.clone()
        },
    )
}

/// A resumable shard simulation: either fidelity, runnable in epochs so
/// the work-stealing pool can interleave many shards on few threads.
enum ShardEngine {
    Full {
        sim: Box<Simulator<NetMsg>>,
        registry: Arc<Registry>,
    },
    Hybrid(Box<HybridShard>),
}

impl ShardEngine {
    /// Advance the shard's virtual clock to `until` (inclusive).
    fn run_until(&mut self, until: SimTime) {
        match self {
            ShardEngine::Full { sim, .. } => sim.run_until(until),
            ShardEngine::Hybrid(shard) => shard.run_until(until),
        }
    }

    /// Finish the shard: flush its sink and report statistics.
    fn finish(self) -> ShardOutcome {
        match self {
            ShardEngine::Full { sim, registry } => {
                let stats = sim.stats();
                // Dropping the simulator drops the measurement peer, which
                // flushes the collector's pending record buffer into the
                // sink — after this the sink has seen the complete stream
                // (and the registry its final sink counters).
                drop(sim);
                ShardOutcome {
                    sim: stats,
                    elided_msgs: 0,
                    modeled_msgs: 0,
                    telemetry: registry.snapshot(),
                }
            }
            ShardEngine::Hybrid(shard) => shard.finish(),
        }
    }
}

/// Build one shard campaign at `sessions_per_day`, deriving every stream
/// from `seq`. Returns the engine and its horizon (campaign end plus the
/// grace period in which in-flight sessions and probe-close chains of
/// vanished peers settle).
fn build_shard(
    cfg: &PopulationConfig,
    vocab: Arc<Vocabulary>,
    seq: SeedSequence,
    sessions_per_day: f64,
    sink: SharedSink,
) -> (ShardEngine, SimTime) {
    let end = SimTime::from_secs_f64(cfg.days * 86_400.0);
    let horizon = end + SimDuration::from_hours(2);
    // One registry per shard: single-writer relaxed atomics on the hot
    // path, snapshotted at shard finish and merged in `absorb`.
    let registry = Arc::new(Registry::new());
    if cfg.fidelity == Fidelity::Hybrid {
        let shard = HybridShard::new(cfg, vocab, seq, sessions_per_day, sink, registry);
        return (ShardEngine::Hybrid(Box::new(shard)), horizon);
    }
    let planner = SessionPlanner::paper_default(vocab.clone());
    let db = GeoDb::synthetic();
    let alloc = Arc::new(AddressAllocator::new(&db));
    let env = PeerEnv {
        vocab,
        diurnal: planner.diurnal,
        alloc,
        files: planner.files,
        relay: cfg.relay,
        latency: LatencyModel::intra_continent(),
        transport: cfg.transport,
    };

    // Queue pressure at any instant is one timer batch of arrivals (the
    // driver schedules an hour of arrivals at once) plus a handful of
    // pending timers and in-flight frames per live connection.
    let events_capacity = (sessions_per_day / 24.0) as usize + cfg.max_connections * 8 + 256;
    let mut sim: Box<Simulator<NetMsg>> = Box::new(Simulator::with_capacity(
        seq.derive_seed("engine"),
        events_capacity,
    ));
    let collector_cfg = CollectorConfig {
        max_connections: cfg.max_connections,
        forward_fanout: cfg.forward_fanout,
        seed: seq.derive_seed("collector"),
        transport: cfg.transport,
        ..CollectorConfig::default()
    };
    let server = sim.add_node(Box::new(MeasurementPeer::with_sink_and_registry(
        collector_cfg,
        sink,
        Arc::clone(&registry),
    )));

    let driver = PopulationDriver {
        server,
        planner,
        arrivals: ArrivalProcess::new(sessions_per_day),
        env,
        seq: seq.child("population"),
        end,
        spawned: 0,
        rng: seq.rng("arrivals"),
    };
    sim.add_node(Box::new(driver));
    (ShardEngine::Full { sim, registry }, horizon)
}

/// Run one simulator campaign at `sessions_per_day`, deriving every
/// stream from `seq`. [`run_population`] is exactly this at full rate
/// with the root sequence; shards run it at `rate / n` with per-shard
/// derived sequences.
fn run_shard(
    cfg: &PopulationConfig,
    vocab: Arc<Vocabulary>,
    seq: SeedSequence,
    sessions_per_day: f64,
    sink: SharedSink,
) -> ShardOutcome {
    let (mut engine, horizon) = {
        telemetry::scope!("build");
        build_shard(cfg, vocab, seq, sessions_per_day, sink)
    };
    {
        telemetry::scope!("run");
        engine.run_until(horizon);
    }
    telemetry::scope!("finish");
    engine.finish()
}

/// Pre-reservation estimate for a retained trace: expected connections
/// plus slack, and a message volume estimate (relay + keepalive traffic
/// dominates; ~tens of messages per session at default rates).
/// Reallocation in the record hot path is what this avoids. The message
/// estimate no longer pins memory: the chunked store caps its flat tail
/// at one chunk and keeps the rest compressed, so an over-estimate costs
/// a chunk-directory reservation, not gigabytes of columns.
fn retained_trace_for(sessions_per_day: f64, days: f64) -> Arc<parking_lot::Mutex<Trace>> {
    let expected_sessions = (sessions_per_day * days * 1.3) as usize + 64;
    Arc::new(parking_lot::Mutex::new(Trace::with_capacity(
        expected_sessions,
        expected_sessions * 32,
    )))
}

/// Take a trace back out of the shared handle after its campaign ended.
fn unwrap_trace(trace: Arc<parking_lot::Mutex<Trace>>) -> Trace {
    // Drop decode/seal scratch and dead tail capacity first: when
    // another handle is still alive the fallback below deep-clones, and
    // the scratch would be copied into the snapshot, inflating retained
    // RSS (mirror of the PR 1 `drop(sim)`-before-unwrap teardown fix).
    trace.lock().compact();
    Arc::try_unwrap(trace)
        .map(parking_lot::Mutex::into_inner)
        .unwrap_or_else(|arc| arc.lock().clone())
}

/// Run a full population campaign and return the measurement trace.
pub fn run_population(cfg: &PopulationConfig) -> Trace {
    run_population_with_stats(cfg).0
}

/// [`run_population`] plus the engine statistics of the run.
pub fn run_population_with_stats(cfg: &PopulationConfig) -> (Trace, CampaignStats) {
    let trace = retained_trace_for(cfg.sessions_per_day, cfg.days);
    let stats = run_population_into(cfg, trace.clone());
    (unwrap_trace(trace), stats)
}

/// Run a full single-shard campaign, delivering the record stream to
/// `sink` instead of materializing a trace. With a streaming aggregator
/// sink the full trace is never held in memory; with a `Trace` sink this
/// is exactly [`run_population_with_stats`].
pub fn run_population_into(cfg: &PopulationConfig, sink: SharedSink) -> CampaignStats {
    telemetry::scope!("campaign");
    let seq = SeedSequence::new(cfg.seed);
    let vocab = {
        telemetry::scope!("build");
        Arc::new(build_vocabulary(cfg, &seq))
    };
    let outcome = run_shard(cfg, vocab, seq, cfg.sessions_per_day, sink);
    let mut stats = CampaignStats::default();
    stats.absorb(&outcome);
    stats
}

/// Number of OS worker threads used to run `n_shards` logical shards.
///
/// Logical shards are semantic (they determine the arrival streams and
/// the merged output), worker threads are not — so by default the pool is
/// clamped to [`std::thread::available_parallelism`]: requesting 8 shards
/// on a 1-core box runs 8 simulators on one worker, bit-identical to the
/// thread-per-shard result but without oversubscription. `force_threads`
/// restores thread-per-shard (e.g. to measure the oversubscribed case).
pub fn shard_worker_threads(n_shards: usize, force_threads: bool) -> usize {
    if force_threads {
        n_shards
    } else {
        n_shards.min(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }
}

/// Number of shared virtual-clock epochs the work-stealing scheduler
/// splits a sharded campaign into. More epochs mean finer-grained load
/// balancing (a shard that runs hot in one epoch can be stolen in the
/// next) at the cost of two barrier crossings per epoch; 16 keeps barrier
/// overhead negligible against multi-second shard epochs.
const SHARD_EPOCHS: u64 = 16;

/// Run `n_shards` logical shards on a work-stealing worker pool,
/// delivering each shard's record stream to the matching sink in `sinks`.
///
/// Shards can vastly outnumber OS threads, so instead of
/// thread-per-shard each shard is a *task*: the campaign horizon is cut
/// into [`SHARD_EPOCHS`] shared virtual-clock epochs, every worker seeds
/// its own deque with its round-robin share of shard tasks, and workers
/// that drain their deque steal from the back of a victim's. A barrier
/// aligns all workers at each epoch boundary, bounding how far any
/// shard's virtual clock can run ahead of the others.
///
/// Shard seeds and rates depend only on `cfg` and `n_shards`, never on
/// the worker count or steal order — each shard is an independent
/// simulation whose event order is internally determined — so results
/// are bit-identical whatever the pool size or interleaving. Each sink
/// sees a complete, well-ordered stream for its shard; merging across
/// shards is the caller's concern (a retained-trace caller uses the
/// canonical `(time, shard)` merge, a streaming caller merges its
/// per-shard aggregates).
///
/// # Panics
///
/// Panics if `sinks.len() != n_shards`, `n_shards == 0`,
/// `max_connections < n_shards`, or a worker thread panics.
pub fn run_population_sharded_into(
    cfg: &PopulationConfig,
    n_shards: usize,
    sinks: Vec<SharedSink>,
    force_threads: bool,
) -> CampaignStats {
    assert!(n_shards >= 1, "n_shards must be at least 1");
    assert_eq!(sinks.len(), n_shards, "one sink per shard required");
    if n_shards == 1 {
        let sink = sinks.into_iter().next().expect("one sink");
        return run_population_into(cfg, sink);
    }
    assert!(
        cfg.max_connections >= n_shards,
        "max_connections ({}) must be at least n_shards ({}) so every shard can admit sessions",
        cfg.max_connections,
        n_shards
    );
    telemetry::scope!("campaign");
    let seq = SeedSequence::new(cfg.seed);
    let rate = cfg.sessions_per_day / n_shards as f64;

    // Build every shard engine up front (cheap: no events run yet). The
    // per-shard admission cap splits the aggregate cap, earlier shards
    // taking the remainder.
    let mut horizon = SimTime::ZERO;
    let engines: Vec<parking_lot::Mutex<Option<ShardEngine>>> = {
        telemetry::scope!("build");
        let vocab = Arc::new(build_vocabulary(cfg, &seq));
        (0..n_shards)
            .map(|i| {
                let mut shard_cfg = cfg.clone();
                shard_cfg.max_connections = cfg.max_connections / n_shards
                    + usize::from(i < cfg.max_connections % n_shards);
                let (engine, h) = build_shard(
                    &shard_cfg,
                    Arc::clone(&vocab),
                    seq.child_indexed("shard", i as u64),
                    rate,
                    Arc::clone(&sinks[i]),
                );
                horizon = h;
                parking_lot::Mutex::new(Some(engine))
            })
            .collect()
    };

    // Epoch boundaries share one virtual clock across all shards; the
    // last boundary is exactly the horizon.
    let boundaries: Vec<SimTime> = (1..=SHARD_EPOCHS)
        .map(|k| SimTime::from_millis(horizon.as_millis() * k / SHARD_EPOCHS))
        .collect();

    let threads = shard_worker_threads(n_shards, force_threads);
    let deques: Vec<parking_lot::Mutex<VecDeque<usize>>> = (0..threads)
        .map(|_| parking_lot::Mutex::new(VecDeque::new()))
        .collect();
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let engines = &engines;
            let deques = &deques;
            let barrier = &barrier;
            let boundaries = &boundaries;
            handles.push(scope.spawn(move || {
                // Worker threads open the scope with an empty stack, so
                // the name IS the full path — each worker's lifetime
                // attributes into the main thread's `campaign` subtree.
                // (On multi-core hosts the summed `run` time is
                // CPU-seconds and can exceed the campaign wall time.)
                telemetry::scope!("campaign/run");
                for &until in boundaries {
                    // Refill the local deque with this worker's share of
                    // shard tasks, then wait for every worker to do the
                    // same so stealing never races a refill.
                    deques[w].lock().extend((w..n_shards).step_by(threads));
                    barrier.wait();
                    loop {
                        let task = deques[w].lock().pop_front().or_else(|| {
                            // Steal from the back of the first non-empty
                            // victim: back-stealing takes the work the
                            // owner would reach last, minimizing contention
                            // on the deque front.
                            (0..threads)
                                .filter(|&v| v != w)
                                .find_map(|v| deques[v].lock().pop_back())
                        });
                        let Some(i) = task else { break };
                        // A shard index lives in exactly one deque per
                        // epoch, so this lock is uncontended.
                        let mut slot = engines[i].lock();
                        slot.as_mut().expect("engine present").run_until(until);
                    }
                    barrier.wait();
                }
            }));
        }
        for h in handles {
            h.join().expect("shard worker thread panicked");
        }
    });

    let mut stats = CampaignStats::default();
    {
        telemetry::scope!("finish");
        for cell in &engines {
            let engine = cell.lock().take().expect("engine present");
            stats.absorb(&engine.finish());
        }
    }
    stats
}

/// Run a population campaign as `n_shards` Poisson-thinned sub-campaigns
/// on a thread pool and merge the traces.
///
/// Superposition: `n` independent Poisson arrival streams at rate `λ/n`
/// are statistically identical to one stream at rate `λ`, so splitting
/// the campaign across simulators preserves the arrival model exactly.
/// Each shard gets its own [`Simulator`], measurement peer, and local
/// trace (no cross-thread shared state on the hot path); shard seeds are
/// derived per index, so the result is bit-identical across repeated runs
/// at any fixed shard count.
///
/// `n_shards == 1` delegates to [`run_population`] and reproduces its
/// output exactly. For `n > 1` the merged trace is statistically — not
/// bitwise — equivalent to the single-shard trace: the shards interleave
/// different arrival streams. Each shard models a `1/n` slice of the
/// measurement node: the arrival stream is thinned to `λ/n` *and* the
/// admission cap is split `max_connections / n` (earlier shards take the
/// remainder), so the merged campaign admits the same aggregate capacity.
/// (A burst can be refused by a full shard while another has free slots,
/// so cap-bound admission is equivalent in expectation, not per-arrival.)
/// Merged connections are ordered by `(start, shard)` with densely
/// renumbered [`SessionId`]s; messages by `(arrival, shard)`.
///
/// # Panics
///
/// Panics if `n_shards == 0` or a shard thread panics.
pub fn run_population_sharded(cfg: &PopulationConfig, n_shards: usize) -> Trace {
    run_population_sharded_with_stats(cfg, n_shards).0
}

/// [`run_population_sharded`] plus aggregated engine statistics.
///
/// # Panics
///
/// Panics under the same conditions as [`run_population_sharded`].
pub fn run_population_sharded_with_stats(
    cfg: &PopulationConfig,
    n_shards: usize,
) -> (Trace, CampaignStats) {
    assert!(n_shards >= 1, "n_shards must be at least 1");
    if n_shards == 1 {
        return run_population_with_stats(cfg);
    }
    let rate = cfg.sessions_per_day / n_shards as f64;
    let shard_traces: Vec<Arc<parking_lot::Mutex<Trace>>> = (0..n_shards)
        .map(|_| retained_trace_for(rate, cfg.days))
        .collect();
    let sinks: Vec<SharedSink> = shard_traces
        .iter()
        .map(|t| Arc::clone(t) as SharedSink)
        .collect();
    let stats = run_population_sharded_into(cfg, n_shards, sinks, false);
    let traces: Vec<Trace> = shard_traces.into_iter().map(unwrap_trace).collect();
    (merge_shard_traces(traces), stats)
}

/// Merge per-shard traces into canonical `(time, shard)` order with
/// densely renumbered session ids.
fn merge_shard_traces(shards: Vec<Trace>) -> Trace {
    // Runs after the campaign scope closed, so the slash name roots this
    // directly under `campaign` in the stage tree.
    telemetry::scope!("campaign/merge");
    let n_conns: usize = shards.iter().map(|t| t.connections.len()).sum();
    let n_msgs: usize = shards.iter().map(|t| t.messages.len()).sum();
    let wire_bytes: u64 = shards.iter().map(|t| t.wire_bytes).sum();

    let mut conns: Vec<(usize, trace::ConnectionRecord)> = Vec::with_capacity(n_conns);
    let mut msg_lists: Vec<trace::MessageColumns> = Vec::with_capacity(shards.len());
    for (shard, t) in shards.into_iter().enumerate() {
        conns.extend(t.connections.into_iter().map(|c| (shard, c)));
        msg_lists.push(t.messages);
    }
    // Each shard's connections are already start-ordered, so a stable sort
    // by (start, shard) yields the canonical merged order.
    conns.sort_by_key(|(shard, c)| (c.start, *shard));

    // Per-shard session ids are dense from 0, so the remap is a plain
    // vector lookup rather than a hash map.
    let mut remap: Vec<Vec<u64>> = msg_lists.iter().map(|_| Vec::new()).collect();
    let mut connections = Vec::with_capacity(n_conns);
    for (new_id, (shard, mut c)) in conns.into_iter().enumerate() {
        let old = c.id.0 as usize;
        if remap[shard].len() <= old {
            remap[shard].resize(old + 1, u64::MAX);
        }
        remap[shard][old] = new_id as u64;
        c.id = trace::SessionId(new_id as u64);
        connections.push(c);
    }

    // K-way merge of the per-shard columns (each already arrival-ordered)
    // into `(arrival, shard)` order: strict `<` with shards scanned in
    // index order makes the earliest shard win ties, matching the old
    // stable sort by `(at, shard)` bit for bit. Sequential cursors decode
    // each sealed source chunk exactly once into cursor-local scratch;
    // the merged store re-seals (and re-spills) as it fills, so peak
    // memory is the shard chunks plus one open chunk per side.
    let mut messages = trace::MessageColumns::with_capacity(n_msgs);
    let mut cursors: Vec<trace::MessageCursor<'_>> =
        msg_lists.iter().map(|list| list.cursor()).collect();
    loop {
        let mut best: Option<(simnet::SimTime, usize)> = None;
        for (shard, cur) in cursors.iter_mut().enumerate() {
            if let Some(t) = cur.peek_time() {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, shard));
                }
            }
        }
        let Some((_, shard)) = best else { break };
        let (mut m, wire) = cursors[shard].next_with_wire().expect("peeked row exists");
        m.session = trace::SessionId(remap[shard][m.session.0 as usize]);
        messages.push_with_wire(m, wire);
    }
    drop(cursors);

    Trace {
        connections,
        messages,
        wire_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::Sessions;

    #[test]
    fn smoke_run_produces_plausible_trace() {
        let cfg = PopulationConfig::smoke();
        let trace = run_population(&cfg);
        let stats = trace.stats();

        // Expected ≈ 0.25 day × 2000/day = 500 connections.
        assert!(
            (300..800).contains(&(stats.direct_connections as usize)),
            "connections {}",
            stats.direct_connections
        );
        // Both node types represented (Table 1: ≈40 % ultrapeers).
        let uf = stats.ultrapeer_fraction();
        assert!((0.3..0.5).contains(&uf), "ultrapeer fraction {uf}");
        // Message mix: pings (keepalive) and pongs present; queries exceed
        // hop-1 queries (relayed traffic).
        assert!(stats.ping_messages > 0);
        assert!(stats.pong_messages > 0);
        // A small fraction of graceful closes send spec-compliant BYE.
        let byes = trace
            .messages
            .iter()
            .filter(|m| matches!(m.payload, trace::RecordedPayload::Bye))
            .count();
        assert!(byes > 0, "no BYE messages observed");
        assert!(stats.hop1_queries > 0);
        assert!(stats.query_messages > stats.hop1_queries);
        assert!(stats.queryhit_messages > 0);

        // Sessions reconstruct; most have ended within the grace period.
        let sessions = Sessions::from_trace(&trace);
        let ended = sessions.iter().filter(|s| s.end.is_some()).count();
        assert!(
            ended as f64 / sessions.len() as f64 > 0.95,
            "{} of {} ended",
            ended,
            sessions.len()
        );
        // ≈70 % of sessions are sub-64 s quick disconnects.
        let quick = sessions
            .iter()
            .filter(|s| {
                s.duration()
                    .map(|d| d.as_secs_f64() < 64.0)
                    .unwrap_or(false)
            })
            .count() as f64;
        let frac = quick / ended as f64;
        assert!((0.6..0.8).contains(&frac), "quick fraction {frac}");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let cfg = PopulationConfig {
            days: 0.05,
            sessions_per_day: 1_500.0,
            ..PopulationConfig::smoke()
        };
        let a = run_population(&cfg);
        let b = run_population(&cfg);
        assert_eq!(a, b, "same seed must produce identical traces");
        let mut cfg2 = cfg;
        cfg2.seed += 1;
        let c = run_population(&cfg2);
        assert_ne!(a, c);
    }

    #[test]
    fn sharded_one_shard_is_exactly_run_population() {
        let cfg = PopulationConfig {
            days: 0.05,
            sessions_per_day: 1_500.0,
            ..PopulationConfig::smoke()
        };
        let single = run_population(&cfg);
        let sharded = run_population_sharded(&cfg, 1);
        assert_eq!(
            single, sharded,
            "n_shards = 1 must reproduce run_population bit for bit"
        );
    }

    #[test]
    fn sharded_runs_are_deterministic() {
        let cfg = PopulationConfig {
            days: 0.05,
            sessions_per_day: 1_500.0,
            ..PopulationConfig::smoke()
        };
        let a = run_population_sharded(&cfg, 4);
        let b = run_population_sharded(&cfg, 4);
        assert_eq!(a, b, "same seed and shard count must merge identically");
        let mut cfg2 = cfg;
        cfg2.seed += 1;
        let c = run_population_sharded(&cfg2, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn sharded_trace_is_canonical_and_statistically_sane() {
        let cfg = PopulationConfig {
            days: 0.1,
            sessions_per_day: 2_000.0,
            ..PopulationConfig::smoke()
        };
        let single = run_population(&cfg);
        let merged = run_population_sharded(&cfg, 4);

        // Session ids are dense and match vector positions; connections
        // are start-ordered; messages are arrival-ordered with valid
        // session references.
        for (i, c) in merged.connections.iter().enumerate() {
            assert_eq!(c.id.0, i as u64);
        }
        for w in merged.connections.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        for i in 1..merged.messages.len() {
            assert!(merged.messages.time_at(i - 1) <= merged.messages.time_at(i));
        }
        for m in merged.messages.iter() {
            assert!((m.session.0 as usize) < merged.connections.len());
        }

        // Poisson superposition: 4 thinned streams at rate/4 carry the
        // same expected volume as the single full-rate stream.
        let s1 = single.stats();
        let s4 = merged.stats();
        let conn_ratio = s4.direct_connections as f64 / s1.direct_connections as f64;
        assert!(
            (0.75..1.35).contains(&conn_ratio),
            "sharded connection volume diverged: {} vs {}",
            s4.direct_connections,
            s1.direct_connections
        );
        // Query volumes are heavy-tailed (rare burst sessions dominate),
        // so compare them in absolute sanity terms rather than against the
        // single run: the merged trace must look like a normal campaign.
        assert!(s4.hop1_queries > 0);
        assert!(
            s4.query_messages > s4.hop1_queries,
            "relayed traffic missing"
        );
        let uf = s4.ultrapeer_fraction();
        assert!((0.25..0.55).contains(&uf), "ultrapeer fraction {uf}");
        let sessions = Sessions::from_trace(&merged);
        let ended = sessions.iter().filter(|s| s.end.is_some()).count();
        let quick = sessions
            .iter()
            .filter(|s| {
                s.duration()
                    .map(|d| d.as_secs_f64() < 64.0)
                    .unwrap_or(false)
            })
            .count() as f64;
        let frac = quick / ended as f64;
        assert!((0.6..0.8).contains(&frac), "quick fraction {frac}");
    }

    #[test]
    fn typed_and_byte_transports_record_identical_traces() {
        // The typed fast path must be observationally equivalent to the
        // byte codec path: same RNG draws, same arrival order, same
        // records, same wire-byte accounting (both are charged via
        // `encoded_len`).
        let typed_cfg = PopulationConfig {
            days: 0.05,
            sessions_per_day: 1_500.0,
            transport: Transport::Typed,
            ..PopulationConfig::smoke()
        };
        let bytes_cfg = PopulationConfig {
            transport: Transport::Bytes,
            ..typed_cfg.clone()
        };
        let typed = run_population(&typed_cfg);
        let bytes = run_population(&bytes_cfg);
        assert_eq!(
            typed, bytes,
            "typed and byte transports must produce identical traces"
        );
        assert!(typed.wire_bytes > 0, "wire-byte accounting missing");
        assert_eq!(
            typed.wire_bytes, bytes.wire_bytes,
            "both transports charge wire bytes via encoded_len"
        );
    }

    #[test]
    fn campaign_stats_expose_queue_pressure() {
        let cfg = PopulationConfig {
            days: 0.05,
            sessions_per_day: 1_500.0,
            ..PopulationConfig::smoke()
        };
        let (trace, stats) = run_population_with_stats(&cfg);
        assert!(stats.events_popped > trace.messages.len() as u64);
        assert!(stats.peak_queue_len > 0);
        assert!(stats.delivered > 0);

        // Sharded stats aggregate: popped sums, peak is a max.
        let (_, sharded) = run_population_sharded_with_stats(&cfg, 2);
        assert!(sharded.events_popped > 0);
        assert!(sharded.peak_queue_len > 0);
        assert!(sharded.peak_queue_len <= stats.events_popped);
    }

    #[test]
    fn probe_closures_overestimate_durations() {
        let trace = run_population(&PopulationConfig::smoke());
        // Vanished peers are probe-closed; the paper says most clients stop
        // silently, so a large share of sessions must be probe-closed.
        let probed = trace
            .connections
            .iter()
            .filter(|c| c.closed_by_probe)
            .count();
        let frac = probed as f64 / trace.connections.len() as f64;
        assert!(frac > 0.5, "probe-closed fraction {frac}");
    }
}
