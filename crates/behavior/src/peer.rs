//! The simulated client peer.
//!
//! A [`ClientPeer`] executes one [`SessionPlan`] against the measurement
//! peer: handshake, planned queries (user + automation), keepalive PINGs,
//! and — for ultrapeer-mode peers — *relayed* traffic from their notional
//! subtrees: QUERYs with hops ≥ 2, PONGs and QUERYHITs advertising remote
//! peers' addresses and shared libraries. The relayed traffic is what
//! gives the trace its "all peers" population (Figures 1–2) and the
//! Table 1 message-volume ratios; it is generated rather than routed
//! through a million-node overlay because nothing the paper measures
//! depends on the topology behind the one-hop neighbors (see DESIGN.md).
//!
//! Session end follows §3.2 reality: most peers *vanish* (no teardown;
//! the measurement peer's probe closes the connection ≈30 s later), the
//! rest close the TCP connection visibly.

use crate::files::SharedFilesModel;
use crate::session::SessionPlan;
use crate::vocabulary::Vocabulary;
use geoip::{AddressAllocator, DiurnalModel};
use gnutella::message::{Message, Payload, Pong, Query, QueryHit, QueryHitResult};
use gnutella::net::{NetMsg, Transport};
use gnutella::wire::decode_message;
use gnutella::{Guid, Handshake, HandshakeResponse};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simnet::{Actor, Context, LatencyModel, NodeId, SimDuration};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Mean intervals for relayed background traffic emitted by ultrapeer
/// neighbors (exponential interarrivals).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelayRates {
    /// Mean seconds between relayed QUERYs per ultrapeer neighbor.
    pub query_mean_secs: f64,
    /// Mean seconds between relayed PONGs.
    pub pong_mean_secs: f64,
    /// Mean seconds between relayed QUERYHITs.
    pub hit_mean_secs: f64,
}

impl Default for RelayRates {
    fn default() -> Self {
        // Calibrated against Table 1 volume ratios (≈20× more total
        // queries than hop-1 queries; PONG ≈ half of QUERY volume).
        RelayRates {
            query_mean_secs: 8.0,
            pong_mean_secs: 15.0,
            hit_mean_secs: 150.0,
        }
    }
}

// Timer tags.
const TAG_END: u64 = 1 << 40;
const TAG_KEEPALIVE: u64 = 1 << 41;
const TAG_RELAY_QUERY: u64 = 1 << 42;
const TAG_RELAY_PONG: u64 = 1 << 43;
const TAG_RELAY_HIT: u64 = 1 << 44;

/// Shared environment handed to every client peer.
#[derive(Clone)]
pub struct PeerEnv {
    /// Query vocabulary (for relayed query text).
    pub vocab: Arc<Vocabulary>,
    /// Diurnal model (for relayed traffic's remote-region mix).
    pub diurnal: DiurnalModel,
    /// Address allocator (for relayed remote addresses).
    pub alloc: Arc<AddressAllocator>,
    /// Shared-files model (for relayed PONG advertisements).
    pub files: SharedFilesModel,
    /// Relay traffic rates.
    pub relay: RelayRates,
    /// Link latency toward the measurement peer.
    pub latency: LatencyModel,
    /// How frames travel toward the measurement peer: typed (default,
    /// zero-copy) or byte-encoded (codec exercised on every send).
    pub transport: Transport,
}

/// One simulated client peer session.
pub struct ClientPeer {
    server: NodeId,
    addr: Ipv4Addr,
    plan: SessionPlan,
    env: PeerEnv,
    rng: StdRng,
    keepalive: SimDuration,
    connected: bool,
}

impl ClientPeer {
    /// Create a peer that will execute `plan` from address `addr`.
    pub fn new(
        server: NodeId,
        addr: Ipv4Addr,
        plan: SessionPlan,
        env: PeerEnv,
        rng: StdRng,
        keepalive: SimDuration,
    ) -> ClientPeer {
        ClientPeer {
            server,
            addr,
            plan,
            env,
            rng,
            keepalive,
            connected: false,
        }
    }

    fn send_frame(&mut self, ctx: &mut Context<'_, NetMsg>, msg: Message) {
        let server = self.server;
        let latency = self.env.latency;
        ctx.send(server, self.env.transport.frame(msg), &latency);
    }

    fn exp_delay(&mut self, mean_secs: f64) -> SimDuration {
        let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        SimDuration::from_secs_f64(-mean_secs * u.ln())
    }

    fn schedule_relays(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let q = self.exp_delay(self.env.relay.query_mean_secs);
        ctx.set_timer(q, TAG_RELAY_QUERY);
        let p = self.exp_delay(self.env.relay.pong_mean_secs);
        ctx.set_timer(p, TAG_RELAY_PONG);
        let h = self.exp_delay(self.env.relay.hit_mean_secs);
        ctx.set_timer(h, TAG_RELAY_HIT);
    }

    fn relay_header(&mut self) -> (u8, u8) {
        // Received hop counts of relayed traffic: skewed toward the middle
        // of the 7-hop flood radius.
        let hops = *[2u8, 2, 3, 3, 3, 4, 4, 5, 5, 6]
            .get(self.rng.gen_range(0..10))
            .unwrap();
        (
            hops,
            gnutella::message::DEFAULT_TTL.saturating_sub(hops).max(1),
        )
    }

    fn send_relay_query(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let hour = ctx.now().hour_of_day();
        let day = ctx.now().day() as usize;
        let region = self.env.diurnal.sample_region(hour, &mut self.rng);
        let text = self.env.vocab.sample_query(region, day, &mut self.rng);
        let (hops, ttl) = self.relay_header();
        let msg = Message {
            guid: Guid::random(&mut self.rng),
            ttl,
            hops,
            payload: Payload::Query(Query::from_id(text)),
        };
        self.send_frame(ctx, msg);
    }

    fn send_relay_pong(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let hour = ctx.now().hour_of_day();
        let region = self.env.diurnal.sample_region(hour, &mut self.rng);
        let addr = self.env.alloc.sample(region, &mut self.rng);
        let files = self.env.files.sample(&mut self.rng);
        let kb = self.env.files.kb_for(files, &mut self.rng);
        let (hops, ttl) = self.relay_header();
        let msg = Message {
            guid: Guid::random(&mut self.rng),
            ttl,
            hops,
            payload: Payload::Pong(Pong {
                port: 6346,
                addr,
                shared_files: files,
                shared_kb: kb,
            }),
        };
        self.send_frame(ctx, msg);
    }

    fn send_relay_hit(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let hour = ctx.now().hour_of_day();
        let region = self.env.diurnal.sample_region(hour, &mut self.rng);
        let addr = self.env.alloc.sample(region, &mut self.rng);
        let (hops, ttl) = self.relay_header();
        let n = self.rng.gen_range(1..=4);
        let results = (0..n)
            .map(|i| QueryHitResult {
                index: i,
                size: self.rng.gen_range(500_000..8_000_000),
                name: format!("file{:04}.mp3", self.rng.gen_range(0..9_999)),
            })
            .collect();
        let msg = Message {
            guid: Guid::random(&mut self.rng),
            ttl,
            hops,
            payload: Payload::QueryHit(QueryHit {
                port: 6346,
                addr,
                speed: self.rng.gen_range(28..1_000),
                results,
                servent: Guid::random(&mut self.rng),
            }),
        };
        self.send_frame(ctx, msg);
    }

    /// React to one frame from the measurement peer, however it traveled.
    fn handle_frame(&mut self, ctx: &mut Context<'_, NetMsg>, m: &Message) {
        match &m.payload {
            Payload::Ping => {
                // Answer probe / keepalive pings while alive.
                let pong = Message::originate(
                    Guid::random(&mut self.rng),
                    Payload::Pong(Pong {
                        port: 6346,
                        addr: self.addr,
                        shared_files: self.plan.shared_files,
                        shared_kb: self.plan.shared_files.saturating_mul(4_000),
                    }),
                )
                .first_hop();
                self.send_frame(ctx, pong);
            }
            Payload::Query(_) => self.maybe_answer_query(ctx, m),
            _ => {}
        }
    }

    /// Respond to a query forwarded to us by the measurement peer.
    fn maybe_answer_query(&mut self, ctx: &mut Context<'_, NetMsg>, incoming: &Message) {
        if self.plan.shared_files == 0 {
            return;
        }
        // A modest hit probability; hits reuse the incoming GUID so the
        // measurement peer's reverse routing is exercised.
        if self.rng.gen::<f64>() > 0.05 {
            return;
        }
        let msg = Message {
            guid: incoming.guid,
            ttl: gnutella::message::DEFAULT_TTL - 1,
            hops: 1,
            payload: Payload::QueryHit(QueryHit {
                port: 6346,
                addr: self.addr,
                speed: self.rng.gen_range(28..1_000),
                results: vec![QueryHitResult {
                    index: 0,
                    size: self.rng.gen_range(500_000..8_000_000),
                    name: "match.mp3".into(),
                }],
                servent: Guid::random(&mut self.rng),
            }),
        };
        self.send_frame(ctx, msg);
    }
}

impl Actor for ClientPeer {
    type Msg = NetMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let hs = Handshake::new(self.plan.user_agent.clone(), self.plan.ultrapeer).render();
        let addr = self.addr;
        let server = self.server;
        let latency = self.env.latency;
        ctx.send(
            server,
            NetMsg::Connect {
                addr,
                handshake: hs,
            },
            &latency,
        );
    }

    fn on_message(&mut self, ctx: &mut Context<'_, NetMsg>, _from: NodeId, msg: NetMsg) {
        match msg {
            NetMsg::ConnectReply(HandshakeResponse::Accept) => {
                self.connected = true;
                // Plan timeline starts now.
                for (i, q) in self.plan.queries.iter().enumerate() {
                    ctx.set_timer(q.offset, i as u64);
                }
                ctx.set_timer(self.plan.duration, TAG_END);
                let ka = self.keepalive;
                ctx.set_timer(ka, TAG_KEEPALIVE);
                if self.plan.ultrapeer {
                    self.schedule_relays(ctx);
                }
            }
            NetMsg::ConnectReply(HandshakeResponse::Busy) => {
                ctx.remove_self();
            }
            NetMsg::Frame(m) => self.handle_frame(ctx, &m),
            NetMsg::Data(mut bytes) => {
                while let Ok(m) = decode_message(&mut bytes) {
                    self.handle_frame(ctx, &m);
                }
            }
            NetMsg::Disconnect => {
                ctx.remove_self();
            }
            NetMsg::Connect { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, NetMsg>, tag: u64) {
        if !self.connected {
            return;
        }
        match tag {
            TAG_END => {
                if !self.plan.vanish {
                    if self.plan.send_bye {
                        let bye = Message::originate(
                            Guid::random(&mut self.rng),
                            Payload::Bye(gnutella::message::Bye {
                                code: 200,
                                reason: "shutting down".into(),
                            }),
                        )
                        .first_hop();
                        self.send_frame(ctx, bye);
                    }
                    let server = self.server;
                    let latency = self.env.latency;
                    ctx.send(server, NetMsg::Disconnect, &latency);
                }
                // Either way the peer is gone; a vanished peer simply stops
                // responding and the measurement side probe-closes later.
                ctx.remove_self();
            }
            TAG_KEEPALIVE => {
                let ping =
                    Message::originate(Guid::random(&mut self.rng), Payload::Ping).first_hop();
                self.send_frame(ctx, ping);
                let ka = self.keepalive;
                ctx.set_timer(ka, TAG_KEEPALIVE);
            }
            TAG_RELAY_QUERY => {
                self.send_relay_query(ctx);
                let d = self.exp_delay(self.env.relay.query_mean_secs);
                ctx.set_timer(d, TAG_RELAY_QUERY);
            }
            TAG_RELAY_PONG => {
                self.send_relay_pong(ctx);
                let d = self.exp_delay(self.env.relay.pong_mean_secs);
                ctx.set_timer(d, TAG_RELAY_PONG);
            }
            TAG_RELAY_HIT => {
                self.send_relay_hit(ctx);
                let d = self.exp_delay(self.env.relay.hit_mean_secs);
                ctx.set_timer(d, TAG_RELAY_HIT);
            }
            i => {
                // A planned query.
                let Some(pq) = self.plan.queries.get(i as usize) else {
                    return;
                };
                let payload = Payload::Query(Query {
                    min_speed: 0,
                    text: pq.text,
                    sha1: pq.sha1.clone(),
                });
                let msg = Message::originate(Guid::random(&mut self.rng), payload).first_hop();
                self.send_frame(ctx, msg);
            }
        }
    }

    fn on_stop(&mut self, _now: simnet::SimTime) {}
}

// Quick-session note: quick disconnects are just plans with kind
// `SessionKind::Quick`, executed identically (short duration, usually no
// queries); the measurement side cannot tell the difference except by
// duration — which is the point of filter rule 3.
