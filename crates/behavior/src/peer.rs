//! The simulated client peer.
//!
//! A [`ClientPeer`] executes one [`SessionPlan`] against the measurement
//! peer: handshake, planned queries (user + automation), keepalive PINGs,
//! and — for ultrapeer-mode peers — *relayed* traffic from their notional
//! subtrees: QUERYs with hops ≥ 2, PONGs and QUERYHITs advertising remote
//! peers' addresses and shared libraries. The relayed traffic is what
//! gives the trace its "all peers" population (Figures 1–2) and the
//! Table 1 message-volume ratios; it is generated rather than routed
//! through a million-node overlay because nothing the paper measures
//! depends on the topology behind the one-hop neighbors (see DESIGN.md).
//!
//! All traffic is drawn through [`crate::stream`] from the session's own
//! RNG, and every send/timer is scheduled with a `(lane, key)` ordering
//! pair — the peer's node id and a session-local schedule counter. Both
//! choices make the peer's observable behavior a pure function of its
//! session stream, which is what lets the hybrid-fidelity engine
//! ([`crate::hybrid`]) reproduce the observed trace bit for bit without
//! running the actor.
//!
//! The emission timeline is pulled lazily off a [`SessionEmitter`]: one
//! outstanding timer per session, re-armed at each emission, instead of
//! pre-arming every planned query up front.
//!
//! Session end follows §3.2 reality: most peers *vanish* (no teardown;
//! the measurement peer's probe closes the connection ≈30 s later), the
//! rest close the TCP connection visibly.

use crate::files::SharedFilesModel;
use crate::session::SessionPlan;
use crate::stream::{
    draw_query_answer, draw_relay_hit, draw_relay_pong, draw_relay_query, EmissionKind,
    SessionEmitter, ANSWER_FILE_NAME,
};
use crate::vocabulary::Vocabulary;
use geoip::{AddressAllocator, DiurnalModel};
use gnutella::message::{Message, Payload, Pong, Query, QueryHit, QueryHitResult};
use gnutella::net::{NetMsg, Transport};
use gnutella::wire::decode_message;
use gnutella::{Guid, Handshake, HandshakeResponse};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use simnet::{Actor, Context, LatencyModel, NodeId, SimDuration, SimTime};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Mean intervals for relayed background traffic emitted by ultrapeer
/// neighbors (exponential interarrivals).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelayRates {
    /// Mean seconds between relayed QUERYs per ultrapeer neighbor.
    pub query_mean_secs: f64,
    /// Mean seconds between relayed PONGs.
    pub pong_mean_secs: f64,
    /// Mean seconds between relayed QUERYHITs.
    pub hit_mean_secs: f64,
}

impl Default for RelayRates {
    fn default() -> Self {
        // Calibrated against Table 1 volume ratios (≈20× more total
        // queries than hop-1 queries; PONG ≈ half of QUERY volume).
        RelayRates {
            query_mean_secs: 8.0,
            pong_mean_secs: 15.0,
            hit_mean_secs: 150.0,
        }
    }
}

/// Shared environment handed to every client peer.
#[derive(Clone)]
pub struct PeerEnv {
    /// Query vocabulary (for relayed query text).
    pub vocab: Arc<Vocabulary>,
    /// Diurnal model (for relayed traffic's remote-region mix).
    pub diurnal: DiurnalModel,
    /// Address allocator (for relayed remote addresses).
    pub alloc: Arc<AddressAllocator>,
    /// Shared-files model (for relayed PONG advertisements).
    pub files: SharedFilesModel,
    /// Relay traffic rates.
    pub relay: RelayRates,
    /// Link latency toward the measurement peer.
    pub latency: LatencyModel,
    /// How frames travel toward the measurement peer: typed (default,
    /// zero-copy) or byte-encoded (codec exercised on every send).
    pub transport: Transport,
}

/// One simulated client peer session.
pub struct ClientPeer {
    server: NodeId,
    addr: Ipv4Addr,
    plan: SessionPlan,
    env: PeerEnv,
    rng: StdRng,
    keepalive: SimDuration,
    emitter: Option<SessionEmitter>,
    /// The already-selected next emission (the armed timer's meaning).
    pending: Option<EmissionKind>,
    /// Session-local schedule counter: the `key` half of every
    /// `(lane, key)` this peer schedules with.
    next_key: u64,
}

impl ClientPeer {
    /// Create a peer that will execute `plan` from address `addr`.
    pub fn new(
        server: NodeId,
        addr: Ipv4Addr,
        plan: SessionPlan,
        env: PeerEnv,
        rng: StdRng,
        keepalive: SimDuration,
    ) -> ClientPeer {
        ClientPeer {
            server,
            addr,
            plan,
            env,
            rng,
            keepalive,
            emitter: None,
            pending: None,
            next_key: 0,
        }
    }

    fn take_key(&mut self) -> u64 {
        let k = self.next_key;
        self.next_key += 1;
        k
    }

    fn send_frame(&mut self, ctx: &mut Context<'_, NetMsg>, msg: Message) {
        let server = self.server;
        let d = self.env.latency.sample(&mut self.rng);
        let key = self.take_key();
        let lane = ctx.id().0;
        ctx.send_after_keyed(server, self.env.transport.frame(msg), d, lane, key);
    }

    /// Pull the next emission off the merged stream and arm its timer.
    fn arm_next(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let Some(emitter) = self.emitter.as_mut() else {
            return;
        };
        if let Some((at, kind)) = emitter.next(&self.plan, &self.env.relay, &mut self.rng) {
            self.pending = Some(kind);
            let key = self.take_key();
            let lane = ctx.id().0;
            let delay = at.since(ctx.now());
            ctx.set_timer_keyed(delay, 0, lane, key);
        }
    }

    fn emit(&mut self, ctx: &mut Context<'_, NetMsg>, kind: EmissionKind) {
        match kind {
            EmissionKind::Planned(i) => {
                let Some(pq) = self.plan.queries.get(i) else {
                    return;
                };
                let payload = Payload::Query(Query {
                    min_speed: 0,
                    text: pq.text,
                    sha1: pq.sha1.clone(),
                });
                let msg = Message::originate(Guid::random(&mut self.rng), payload).first_hop();
                self.send_frame(ctx, msg);
            }
            EmissionKind::Keepalive => {
                let ping =
                    Message::originate(Guid::random(&mut self.rng), Payload::Ping).first_hop();
                self.send_frame(ctx, ping);
            }
            EmissionKind::RelayQuery => {
                let d =
                    draw_relay_query(&self.env.vocab, &self.env.diurnal, ctx.now(), &mut self.rng);
                let msg = Message {
                    guid: d.guid,
                    ttl: d.ttl,
                    hops: d.hops,
                    payload: Payload::Query(Query::from_id(d.text)),
                };
                self.send_frame(ctx, msg);
            }
            EmissionKind::RelayPong => {
                let d = draw_relay_pong(
                    &self.env.diurnal,
                    &self.env.alloc,
                    &self.env.files,
                    ctx.now(),
                    &mut self.rng,
                );
                let msg = Message {
                    guid: d.guid,
                    ttl: d.ttl,
                    hops: d.hops,
                    payload: Payload::Pong(Pong {
                        port: 6346,
                        addr: d.addr,
                        shared_files: d.files,
                        shared_kb: d.kb,
                    }),
                };
                self.send_frame(ctx, msg);
            }
            EmissionKind::RelayHit => {
                let d =
                    draw_relay_hit(&self.env.diurnal, &self.env.alloc, ctx.now(), &mut self.rng);
                let results = d
                    .results
                    .iter()
                    .enumerate()
                    .map(|(i, r)| QueryHitResult {
                        index: i as u32,
                        size: r.size,
                        name: format!("file{:04}.mp3", r.name_num),
                    })
                    .collect();
                let msg = Message {
                    guid: d.guid,
                    ttl: d.ttl,
                    hops: d.hops,
                    payload: Payload::QueryHit(QueryHit {
                        port: 6346,
                        addr: d.addr,
                        speed: d.speed,
                        results,
                        servent: d.servent,
                    }),
                };
                self.send_frame(ctx, msg);
            }
            EmissionKind::End => {
                if !self.plan.vanish {
                    if self.plan.send_bye {
                        let bye = Message::originate(
                            Guid::random(&mut self.rng),
                            Payload::Bye(gnutella::message::Bye {
                                code: 200,
                                reason: "shutting down".into(),
                            }),
                        )
                        .first_hop();
                        self.send_frame(ctx, bye);
                    }
                    let server = self.server;
                    let d = self.env.latency.sample(&mut self.rng);
                    let key = self.take_key();
                    let lane = ctx.id().0;
                    ctx.send_after_keyed(server, NetMsg::Disconnect, d, lane, key);
                }
                // Either way the peer is gone; a vanished peer simply stops
                // responding and the measurement side probe-closes later.
                ctx.remove_self();
            }
        }
    }

    /// React to one frame from the measurement peer, however it traveled.
    fn handle_frame(&mut self, ctx: &mut Context<'_, NetMsg>, m: &Message) {
        match &m.payload {
            Payload::Ping => {
                // Answer probe / keepalive pings while alive.
                let pong = Message::originate(
                    Guid::random(&mut self.rng),
                    Payload::Pong(Pong {
                        port: 6346,
                        addr: self.addr,
                        shared_files: self.plan.shared_files,
                        shared_kb: self.plan.shared_files.saturating_mul(4_000),
                    }),
                )
                .first_hop();
                self.send_frame(ctx, pong);
            }
            Payload::Query(_) => {
                if let Some(a) = draw_query_answer(self.plan.shared_files, &mut self.rng) {
                    let msg = Message {
                        guid: m.guid,
                        ttl: gnutella::message::DEFAULT_TTL - 1,
                        hops: 1,
                        payload: Payload::QueryHit(QueryHit {
                            port: 6346,
                            addr: self.addr,
                            speed: a.speed,
                            results: vec![QueryHitResult {
                                index: 0,
                                size: a.size,
                                name: ANSWER_FILE_NAME.into(),
                            }],
                            servent: a.servent,
                        }),
                    };
                    self.send_frame(ctx, msg);
                }
            }
            _ => {}
        }
    }
}

impl Actor for ClientPeer {
    type Msg = NetMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, NetMsg>) {
        let hs = Handshake::new(self.plan.user_agent.clone(), self.plan.ultrapeer).render();
        let addr = self.addr;
        let server = self.server;
        let d = self.env.latency.sample(&mut self.rng);
        let key = self.take_key();
        let lane = ctx.id().0;
        ctx.send_after_keyed(
            server,
            NetMsg::Connect {
                addr,
                handshake: hs,
            },
            d,
            lane,
            key,
        );
    }

    fn on_message(&mut self, ctx: &mut Context<'_, NetMsg>, _from: NodeId, msg: NetMsg) {
        match msg {
            NetMsg::ConnectReply(HandshakeResponse::Accept) => {
                // Plan timeline starts now.
                self.emitter = Some(SessionEmitter::start(
                    &self.plan,
                    self.keepalive,
                    &self.env.relay,
                    ctx.now(),
                    &mut self.rng,
                ));
                self.arm_next(ctx);
            }
            NetMsg::ConnectReply(HandshakeResponse::Busy) => {
                ctx.remove_self();
            }
            NetMsg::Frame(m) => self.handle_frame(ctx, &m),
            NetMsg::Data(mut bytes) => {
                while let Ok(m) = decode_message(&mut bytes) {
                    self.handle_frame(ctx, &m);
                }
            }
            NetMsg::Disconnect => {
                ctx.remove_self();
            }
            NetMsg::Connect { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, NetMsg>, _tag: u64) {
        if self.emitter.is_none() {
            return;
        }
        let Some(kind) = self.pending.take() else {
            return;
        };
        self.emit(ctx, kind);
        if kind != EmissionKind::End {
            self.arm_next(ctx);
        }
    }

    fn on_stop(&mut self, _now: SimTime) {}
}

// Quick-session note: quick disconnects are just plans with kind
// `SessionKind::Quick`, executed identically (short duration, usually no
// queries); the measurement side cannot tell the difference except by
// duration — which is the point of filter rule 3.
