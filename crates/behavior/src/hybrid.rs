//! Hybrid-fidelity campaign execution: full fidelity inside the
//! observation horizon, flow-level statistics beyond it.
//!
//! The paper's measurement peer only ever observes its ≤200 one-hop
//! neighbors; everything beyond that horizon reaches the trace only as
//! the relay/background traffic those neighbors forward. Full-fidelity
//! simulation nevertheless pays per-message actor dispatch, protocol
//! message construction, handshake rendering/parsing, and GUID routing
//! for every peer. [`HybridShard`] keeps the *observable* half — every
//! message the collector records, every reply that provokes recorded
//! traffic — and replaces the rest with direct statistical emission:
//!
//! * sessions are plain state (plan + RNG + [`SessionEmitter`]), not
//!   actors; their traffic is drawn through [`crate::stream`] — the same
//!   functions, in the same order, from the same per-session RNG streams
//!   as [`crate::peer::ClientPeer`] — and lands in the trace as
//!   [`MessageRecord`]s with analytic wire lengths, skipping
//!   `gnutella::message::Message` construction and the codec entirely;
//! * collector replies that no recorded message depends on (PONG answers
//!   to pings, forwarded query copies to sessions that share no files,
//!   reverse-routed hits, busy replies, probes to vanished peers) are
//!   *elided*: their RNG draws and schedule keys are consumed for
//!   ordering parity, but no event is created;
//! * event ordering replays the engine's `(time, lane, key)` contract
//!   (see [`simnet::EventQueue::push_keyed`]), so ties at the same
//!   millisecond resolve exactly as the full simulation resolves them.
//!
//! The result is an observed trace that is **bit-identical** to full
//! simulation — enforced by golden equivalence tests — at a fraction of
//! the per-message cost, which is what makes `mega`-scale campaigns
//! (millions of sessions/day) tractable.

use crate::arrivals::ArrivalProcess;
use crate::files::SharedFilesModel;
use crate::peer::RelayRates;
use crate::session::{SessionPlan, SessionPlanner};
use crate::stream::{
    draw_query_answer, draw_relay_hit, draw_relay_pong, draw_relay_query, EmissionKind,
    SessionEmitter, ANSWER_FILE_NAME, RELAY_HIT_NAME_LEN,
};
use crate::vocabulary::Vocabulary;
use geoip::{AddressAllocator, GeoDb};
use gnutella::message::DEFAULT_TTL;
use gnutella::peerlink::{IdleAction, IdleTracker, IDLE_PROBE_AFTER};
use gnutella::Guid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{EventQueue, LatencyModel, SimDuration, SimStats, SimTime};
use stats::rng::SeedSequence;
use std::net::Ipv4Addr;
use std::sync::Arc;
use telemetry::{Counter, Hist, Registry, Snapshot};
use trace::{
    CollectorConfig, ConnectionRecord, MessageRecord, RecordedPayload, SessionId, SharedSink,
};

use crate::driver::PopulationConfig;

/// Gnutella message header length on the wire.
const WIRE_HEADER: u32 = 23;
/// Wire length of a PING (header only).
const WIRE_PING: u32 = WIRE_HEADER;
/// Wire length of a PONG (header + 14-byte body).
const WIRE_PONG: u32 = WIRE_HEADER + 14;
/// Wire length of the closing BYE (`code` + `"shutting down"` + NUL).
const WIRE_BYE: u32 = WIRE_HEADER + 2 + 13 + 1;
/// Wire length of a QUERYHIT excluding result records
/// (header + count/port/addr/speed + servent GUID).
const WIRE_HIT_BASE: u32 = WIRE_HEADER + 11 + 16;
/// Wire length of one relayed-hit result record
/// (index/size + `fileNNNN.mp3` + terminators).
const WIRE_RELAY_HIT_RESULT: u32 = 8 + RELAY_HIT_NAME_LEN as u32 + 2;
/// Wire length of the single-result answer hit (`match.mp3`).
const WIRE_ANSWER_HIT: u32 = WIRE_HIT_BASE + 8 + ANSWER_FILE_NAME.len() as u32 + 2;

/// Wire length of a QUERY with the given text length and optional SHA1
/// extension length (min_speed + text + NUL, + sha1 + NUL).
fn wire_query(text_len: usize, sha1_len: Option<usize>) -> u32 {
    WIRE_HEADER + 2 + text_len as u32 + 1 + sha1_len.map_or(0, |l| l as u32 + 1)
}

/// Collector node id within a shard (always spawned first).
const COLLECTOR_LANE: u32 = 0;
/// Driver node id within a shard (spawned second).
const DRIVER_LANE: u32 = 1;
/// First session node id.
const FIRST_SESSION_NODE: u32 = 2;

/// A fully drawn peer→collector message in flight.
struct WireMsg {
    guid: Guid,
    hops: u8,
    ttl: u8,
    wire: u32,
    payload: RecordedPayload,
    /// Reverse-routing context: `Some(origin)` when this is an answer
    /// hit reusing a forwarded query's GUID.
    answer_origin: Option<u32>,
}

enum Body {
    /// Driver hour tick: schedule the next hour of arrivals.
    DriverHour,
    /// Driver arrival timer: spawn one session.
    Arrival,
    /// A session's connect request reaches the collector.
    ConnectArrive(u32),
    /// The collector's accept reply reaches the session.
    AcceptArrive(u32),
    /// A session's emission timer fires (it sends its pending item).
    PeerSend(u32),
    /// A session's message reaches the collector.
    MsgArrive(u32, WireMsg),
    /// A session's TCP disconnect reaches the collector.
    ConnClose(u32),
    /// The collector's disconnect (probe close) reaches the session.
    PeerGone(u32),
    /// A forwarded query copy reaches a session that might answer it.
    FwdQuery {
        target: u32,
        origin: u32,
        guid: Guid,
    },
    /// The collector's probe PING reaches a (live) session.
    ProbePing(u32),
    /// The collector's idle-check timer for a connection fires.
    IdleCheck(u32),
}

// Events live in the shared [`simnet::EventQueue`] timing wheel, keyed
// by the engine's `(time, lane, key)` contract. `(lane, key)` pairs are
// unique per instant by construction (every lane keys its events with a
// private counter), so the wheel's `(time, lane, key, seq)` pop order
// reduces to the same total order the full engine uses.

/// One live session: the same state a [`crate::peer::ClientPeer`] actor
/// would hold, minus the actor.
struct Session {
    rng: StdRng,
    plan: SessionPlan,
    addr: Ipv4Addr,
    keepalive: SimDuration,
    emitter: Option<SessionEmitter>,
    pending: Option<EmissionKind>,
    next_key: u64,
    /// Gap-batched RNG draws: pre-drawn (GUID, send-latency) pairs
    /// served to upcoming emissions. Only populated for free-rider
    /// leaves (`!ultrapeer && shared_files == 0`), whose every
    /// post-accept RNG consumption before `End` is provably such a
    /// pair — planned queries, keepalives, and probe pongs alike — with
    /// no interleaving draws from the same RNG. Serving pre-drawn pairs
    /// in order therefore leaves the RNG stream bit-identical to
    /// per-emission draws.
    pair_buf: Vec<(Guid, SimDuration)>,
    pair_pos: usize,
    /// Exact count of not-yet-emitted planned + keepalive emissions.
    /// Refills never draw past it, and emissions decrement it while
    /// probes only consume buffered pairs, so the buffer is provably
    /// empty when `End` draws directly from the RNG.
    pair_budget: u64,
    /// Whether this session is eligible for gap batching.
    batching: bool,
}

/// Outcome of one (full- or hybrid-fidelity) shard run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardOutcome {
    /// Engine-level statistics (hybrid shards fill the same fields from
    /// their event loop).
    pub sim: SimStats,
    /// Messages whose delivery the hybrid engine elided entirely.
    pub elided_msgs: u64,
    /// Peer→collector messages the hybrid engine modeled as events.
    pub modeled_msgs: u64,
    /// The shard registry's final counter snapshot (sink-layer counters;
    /// engine-level quantities are folded in at the campaign merge).
    pub telemetry: Snapshot,
}

/// Local-record buffer size triggering a sink drain — matches the
/// collector's chunking so the sink sees identical batch boundaries.
const RECORD_FLUSH_CHUNK: usize = 8_192;

/// Pairs drawn per gap-batched RNG refill burst (see [`Session`]).
const RNG_BATCH: usize = 16;

/// A hybrid-fidelity shard: drop-in replacement for a full-fidelity
/// `Simulator` campaign shard, producing a bit-identical observed trace.
pub struct HybridShard {
    queue: EventQueue<Body>,
    /// One-event lookahead: popped past a `run_until` bound, replayed
    /// first on the next call.
    stashed: Option<(SimTime, Body)>,
    end: SimTime,
    horizon: SimTime,

    // Driver state (lane 1).
    arrivals: ArrivalProcess,
    drng: StdRng,
    pop_seq: SeedSequence,
    spawned: u64,
    dkey: u64,
    next_node: u32,

    // Shared environment.
    planner: SessionPlanner,
    vocab: Arc<Vocabulary>,
    alloc: Arc<AddressAllocator>,
    files: SharedFilesModel,
    relay: RelayRates,
    peer_latency: LatencyModel,

    // Session table, indexed by `node - FIRST_SESSION_NODE`; `None` is a
    // dead (or rejected) session.
    sessions: Vec<Option<Box<Session>>>,

    // Collector state (lane 0).
    max_connections: usize,
    forward_fanout: usize,
    coll_latency: LatencyModel,
    crng: StdRng,
    ckey: u64,
    next_sid: u64,
    /// Open connections ordered by node id (monotone, so inserts append).
    conns: Vec<(u32, SessionId, IdleTracker)>,
    pending_records: Vec<MessageRecord>,
    pending_wire: Vec<u32>,
    sink: SharedSink,
    registry: Arc<Registry>,

    // Statistics.
    pops: u64,
    delivered: u64,
    dropped: u64,
    timers_fired: u64,
    elided: u64,
    modeled: u64,
}

impl HybridShard {
    /// Build a shard exactly as the full-fidelity `run_shard` would:
    /// same seed derivations, same environment, same horizon.
    pub fn new(
        cfg: &PopulationConfig,
        vocab: Arc<Vocabulary>,
        seq: SeedSequence,
        sessions_per_day: f64,
        sink: SharedSink,
        registry: Arc<Registry>,
    ) -> HybridShard {
        let planner = SessionPlanner::paper_default(vocab.clone());
        let db = GeoDb::synthetic();
        let alloc = Arc::new(AddressAllocator::new(&db));
        let files = planner.files;
        let end = SimTime::from_secs_f64(cfg.days * 86_400.0);
        let collector_defaults = CollectorConfig::default();
        let mut shard = HybridShard {
            queue: EventQueue::with_capacity(
                (sessions_per_day / 24.0) as usize + cfg.max_connections * 8 + 256,
            ),
            stashed: None,
            end,
            horizon: end + SimDuration::from_hours(2),
            arrivals: ArrivalProcess::new(sessions_per_day),
            drng: seq.rng("arrivals"),
            pop_seq: seq.child("population"),
            spawned: 0,
            dkey: 0,
            next_node: FIRST_SESSION_NODE,
            planner,
            vocab,
            alloc,
            files,
            relay: cfg.relay,
            peer_latency: LatencyModel::intra_continent(),
            sessions: Vec::new(),
            max_connections: cfg.max_connections,
            forward_fanout: cfg.forward_fanout,
            coll_latency: collector_defaults.latency,
            crng: StdRng::seed_from_u64(seq.derive_seed("collector")),
            ckey: 0,
            next_sid: 0,
            conns: Vec::new(),
            pending_records: Vec::with_capacity(RECORD_FLUSH_CHUNK),
            pending_wire: Vec::with_capacity(RECORD_FLUSH_CHUNK),
            sink,
            registry,
            pops: 0,
            delivered: 0,
            dropped: 0,
            timers_fired: 0,
            elided: 0,
            modeled: 0,
        };
        shard.schedule_hour(SimTime::ZERO);
        shard
    }

    /// The instant the shard stops processing (campaign end plus the
    /// settling grace period).
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    fn push(&mut self, at: SimTime, lane: u32, key: u64, body: Body) {
        self.queue.push_keyed(at, lane, key, body);
    }

    /// Run the event loop until the earliest pending event is past `until`.
    pub fn run_until(&mut self, until: SimTime) {
        if let Some((at, body)) = self.stashed.take() {
            if at > until {
                self.stashed = Some((at, body));
                return;
            }
            self.pops += 1;
            self.process(at, body);
        }
        while let Some((at, _, body)) = self.queue.pop() {
            if at > until {
                // Popped past the bound: replay it on the next epoch.
                self.stashed = Some((at, body));
                break;
            }
            self.pops += 1;
            self.process(at, body);
        }
    }

    /// Finish the shard: drain buffered records and report statistics.
    pub fn finish(mut self) -> ShardOutcome {
        self.flush();
        ShardOutcome {
            sim: SimStats {
                delivered: self.delivered,
                dropped: self.dropped,
                timers_fired: self.timers_fired,
                timers_cancelled: 0,
                spawned: 2 + self.spawned,
                removed: 0,
                events_popped: self.pops,
                peak_queue_len: self.queue.peak_len() as u64,
                heap_spills: self.queue.far_pushed(),
                heap_migrations: self.queue.migrated(),
                wheel_cascades: self.queue.cascades(),
            },
            elided_msgs: self.elided,
            modeled_msgs: self.modeled,
            telemetry: self.registry.snapshot(),
        }
    }

    // ----- driver (lane 1) -------------------------------------------------

    fn schedule_hour(&mut self, now: SimTime) {
        let offs = self.arrivals.arrivals_in_hour(&mut self.drng);
        for off in offs {
            if now + off < self.end {
                let key = self.dkey;
                self.dkey += 1;
                self.push(now + off, DRIVER_LANE, key, Body::Arrival);
            }
        }
        if now + SimDuration::from_hours(1) < self.end {
            let key = self.dkey;
            self.dkey += 1;
            self.push(
                now + SimDuration::from_hours(1),
                DRIVER_LANE,
                key,
                Body::DriverHour,
            );
        }
    }

    fn spawn_session(&mut self, now: SimTime) {
        let hour = now.hour_of_day();
        let day = now.day() as usize;
        let mut rng = self.pop_seq.rng_indexed("peer", self.spawned);
        self.spawned += 1;
        let region = self.planner.diurnal.sample_region(hour, &mut rng);
        let plan = self.planner.plan(day, hour, region, &mut rng);
        let addr = self.alloc.sample(region, &mut rng);
        let (ka_lo, ka_hi) = self.planner.params.keepalive_secs;
        let keepalive = SimDuration::from_secs_f64(rng.gen_range(ka_lo..ka_hi));
        let node = self.next_node;
        self.next_node += 1;
        // The peer's `on_start`: one latency draw, schedule key 0.
        let d = self.peer_latency.sample(&mut rng);
        let session = Session {
            rng,
            plan,
            addr,
            keepalive,
            emitter: None,
            pending: None,
            next_key: 1,
            pair_buf: Vec::new(),
            pair_pos: 0,
            pair_budget: 0,
            batching: false,
        };
        let idx = (node - FIRST_SESSION_NODE) as usize;
        debug_assert_eq!(idx, self.sessions.len());
        self.sessions.push(Some(Box::new(session)));
        self.push(now + d, node, 0, Body::ConnectArrive(node));
    }

    // ----- session helpers -------------------------------------------------

    fn slot(&mut self, node: u32) -> &mut Option<Box<Session>> {
        &mut self.sessions[(node - FIRST_SESSION_NODE) as usize]
    }

    fn take_session(&mut self, node: u32) -> Option<Box<Session>> {
        self.slot(node).take()
    }

    fn put_session(&mut self, node: u32, sess: Box<Session>) {
        *self.slot(node) = Some(sess);
    }

    fn session_alive(&mut self, node: u32) -> bool {
        self.slot(node).is_some()
    }

    /// Pull the session's next emission and schedule its send instant
    /// (the peer's single outstanding timer).
    fn arm_next(&mut self, node: u32, sess: &mut Session) {
        let Some(emitter) = sess.emitter.as_mut() else {
            return;
        };
        if let Some((at, kind)) = emitter.next(&sess.plan, &self.relay, &mut sess.rng) {
            sess.pending = Some(kind);
            let key = sess.next_key;
            sess.next_key += 1;
            self.push(at, node, key, Body::PeerSend(node));
        }
    }

    /// A session sends one message toward the collector: draw latency,
    /// consume a schedule key, enqueue the arrival.
    fn session_send(&mut self, node: u32, sess: &mut Session, now: SimTime, msg: WireMsg) {
        let d = self.peer_latency.sample(&mut sess.rng);
        self.session_send_at(node, sess, now, d, msg);
    }

    /// As [`Self::session_send`], with the send latency already drawn
    /// (the gap-batched path pre-draws it alongside the GUID).
    fn session_send_at(
        &mut self,
        node: u32,
        sess: &mut Session,
        now: SimTime,
        d: SimDuration,
        msg: WireMsg,
    ) {
        let key = sess.next_key;
        sess.next_key += 1;
        self.push(now + d, node, key, Body::MsgArrive(node, msg));
    }

    /// The session's next (GUID, send-latency) pair, in RNG-stream
    /// order: served from the gap-batched buffer when the session is
    /// eligible (refilling it in one burst of up to [`RNG_BATCH`] pairs,
    /// capped by the remaining emission budget), drawn directly
    /// otherwise — including the probe-pong case where the budget has
    /// already run dry. Either way the RNG consumes the same calls in
    /// the same order as per-emission draws.
    fn next_pair(&mut self, sess: &mut Session) -> (Guid, SimDuration) {
        if sess.batching {
            if sess.pair_pos == sess.pair_buf.len() && sess.pair_budget > 0 {
                let n = sess.pair_budget.min(RNG_BATCH as u64) as usize;
                sess.pair_buf.clear();
                sess.pair_pos = 0;
                sess.pair_buf.reserve(n);
                for _ in 0..n {
                    let g = Guid::random(&mut sess.rng);
                    let d = self.peer_latency.sample(&mut sess.rng);
                    sess.pair_buf.push((g, d));
                }
                self.registry.add(Counter::RngBatchedDraws, n as u64);
            }
            if sess.pair_pos < sess.pair_buf.len() {
                let p = sess.pair_buf[sess.pair_pos];
                sess.pair_pos += 1;
                return p;
            }
        }
        let g = Guid::random(&mut sess.rng);
        let d = self.peer_latency.sample(&mut sess.rng);
        (g, d)
    }

    // ----- collector helpers (lane 0) --------------------------------------

    fn ckey(&mut self) -> u64 {
        let k = self.ckey;
        self.ckey += 1;
        k
    }

    fn conn_index(&self, node: u32) -> Option<usize> {
        self.conns.binary_search_by_key(&node, |e| e.0).ok()
    }

    fn flush(&mut self) {
        if self.pending_records.is_empty() {
            return;
        }
        telemetry::scope!("drain");
        let n = self.pending_records.len() as u64;
        let virtual_secs = self
            .pending_records
            .last()
            .map_or(0.0, |r| r.at.as_secs_f64());
        self.sink
            .lock()
            .on_batch(&self.pending_records, &self.pending_wire);
        self.pending_records.clear();
        self.pending_wire.clear();
        self.registry.incr(Counter::SinkBatches);
        self.registry.add(Counter::SinkRecords, n);
        self.registry.observe(Hist::SinkBatchSize, n);
        telemetry::progress::record_batch(n, virtual_secs);
    }

    fn record(&mut self, sid: SessionId, at: SimTime, msg: &WireMsg) {
        self.pending_wire.push(msg.wire);
        self.pending_records.push(MessageRecord {
            session: sid,
            guid: msg.guid,
            at,
            hops: msg.hops,
            ttl: msg.ttl,
            payload: msg.payload,
        });
        if self.pending_records.len() >= RECORD_FLUSH_CHUNK {
            self.flush();
        }
    }

    fn finalize(&mut self, node: u32, end: SimTime, by_probe: bool) {
        if let Some(i) = self.conn_index(node) {
            let (_, sid, _) = self.conns.remove(i);
            // Drain-then-close through the one accounting point, exactly
            // as the full collector finalizes — the sink sees identical
            // batch boundaries, so the per-shard sink counters match
            // across fidelities.
            self.flush();
            self.sink.lock().on_close(sid, end, by_probe);
        }
    }

    // ----- event processing ------------------------------------------------

    fn process(&mut self, at: SimTime, body: Body) {
        match body {
            Body::DriverHour => {
                self.timers_fired += 1;
                self.schedule_hour(at);
            }
            Body::Arrival => {
                self.timers_fired += 1;
                self.spawn_session(at);
            }
            Body::ConnectArrive(node) => {
                self.delivered += 1;
                self.on_connect_arrive(node, at);
            }
            Body::AcceptArrive(node) => {
                self.delivered += 1;
                if let Some(mut sess) = self.take_session(node) {
                    sess.emitter = Some(SessionEmitter::start(
                        &sess.plan,
                        sess.keepalive,
                        &self.relay,
                        at,
                        &mut sess.rng,
                    ));
                    // Arm gap batching for free-rider leaves: they are
                    // never fanout targets (forwarding skips sessions
                    // sharing no files), their emitter draws nothing,
                    // and every pre-`End` emission — planned query,
                    // keepalive, probe pong — consumes exactly one
                    // (GUID, latency) pair. The pre-`End` emission
                    // count is a pure function of the plan: every
                    // retained query fires, plus one keepalive per
                    // whole interval within the session duration.
                    let ka_ms = sess.keepalive.as_millis();
                    if !sess.plan.ultrapeer && sess.plan.shared_files == 0 && ka_ms > 0 {
                        sess.batching = true;
                        sess.pair_budget =
                            sess.plan.queries.len() as u64 + sess.plan.duration.as_millis() / ka_ms;
                    }
                    self.arm_next(node, &mut sess);
                    self.put_session(node, sess);
                } else {
                    self.dropped += 1;
                }
            }
            Body::PeerSend(node) => {
                let Some(mut sess) = self.take_session(node) else {
                    self.dropped += 1;
                    return;
                };
                self.timers_fired += 1;
                let Some(kind) = sess.pending.take() else {
                    self.put_session(node, sess);
                    return;
                };
                let ended = self.emit(node, &mut sess, at, kind);
                if ended {
                    drop(sess); // the peer is gone; free its state
                } else {
                    self.arm_next(node, &mut sess);
                    self.put_session(node, sess);
                }
            }
            Body::MsgArrive(node, msg) => {
                self.delivered += 1;
                self.modeled += 1;
                self.on_msg_arrive(node, at, msg);
            }
            Body::ConnClose(node) => {
                self.delivered += 1;
                self.finalize(node, at, false);
            }
            Body::PeerGone(node) => {
                if self.session_alive(node) {
                    self.delivered += 1;
                    *self.slot(node) = None;
                } else {
                    self.dropped += 1;
                }
            }
            Body::FwdQuery {
                target,
                origin,
                guid,
            } => {
                let Some(mut sess) = self.take_session(target) else {
                    self.dropped += 1;
                    return;
                };
                self.delivered += 1;
                if let Some(a) = draw_query_answer(sess.plan.shared_files, &mut sess.rng) {
                    let _ = a.speed; // recorded payloads carry addr+count only
                    let _ = a.servent;
                    let msg = WireMsg {
                        guid,
                        hops: 1,
                        ttl: DEFAULT_TTL - 1,
                        wire: WIRE_ANSWER_HIT,
                        payload: RecordedPayload::QueryHit {
                            addr: sess.addr,
                            results: 1,
                        },
                        answer_origin: Some(origin),
                    };
                    self.session_send(target, &mut sess, at, msg);
                }
                self.put_session(target, sess);
            }
            Body::ProbePing(node) => {
                let Some(mut sess) = self.take_session(node) else {
                    self.dropped += 1;
                    return;
                };
                self.delivered += 1;
                // Probe pongs consume the same (GUID, latency) pair
                // shape as emissions; they draw from the batch buffer
                // without touching the emission budget.
                let (guid, d) = self.next_pair(&mut sess);
                let msg = WireMsg {
                    guid,
                    hops: 1,
                    ttl: DEFAULT_TTL - 1,
                    wire: WIRE_PONG,
                    payload: RecordedPayload::Pong {
                        addr: sess.addr,
                        shared_files: sess.plan.shared_files,
                    },
                    answer_origin: None,
                };
                self.session_send_at(node, &mut sess, at, d, msg);
                self.put_session(node, sess);
            }
            Body::IdleCheck(node) => {
                self.on_idle_check(node, at);
            }
        }
    }

    fn on_connect_arrive(&mut self, node: u32, at: SimTime) {
        if self.conns.len() >= self.max_connections {
            // Busy reply: draw + key for ordering parity, no event — the
            // rejected peer only removes itself.
            let _ = self.coll_latency.sample(&mut self.crng);
            let _ = self.ckey();
            self.elided += 1;
            *self.slot(node) = None;
            return;
        }
        let Some(sess) = self.take_session(node) else {
            return;
        };
        let sid = SessionId(self.next_sid);
        self.next_sid += 1;
        self.sink.lock().on_connect(ConnectionRecord {
            id: sid,
            addr: sess.addr,
            user_agent: sess.plan.user_agent.clone(),
            ultrapeer: sess.plan.ultrapeer,
            start: at,
            end: None,
            closed_by_probe: false,
        });
        // Admission order is NOT monotone in node id: connect latencies
        // differ, so a later-spawned peer can be admitted first. Keep the
        // list sorted by node (the order the full collector's `ConnSet`
        // maintains, which also fixes fanout-target selection).
        match self.conns.binary_search_by_key(&node, |e| e.0) {
            Ok(_) => unreachable!("node {node} admitted twice"),
            Err(i) => self.conns.insert(i, (node, sid, IdleTracker::new(at))),
        }
        let d = self.coll_latency.sample(&mut self.crng);
        let key = self.ckey();
        self.push(at + d, COLLECTOR_LANE, key, Body::AcceptArrive(node));
        let key = self.ckey();
        self.push(
            at + IDLE_PROBE_AFTER,
            COLLECTOR_LANE,
            key,
            Body::IdleCheck(node),
        );
        self.put_session(node, sess);
    }

    /// Emit one item of the session's merged stream. Returns `true` when
    /// the session ended (its state must be dropped).
    fn emit(&mut self, node: u32, sess: &mut Session, now: SimTime, kind: EmissionKind) -> bool {
        match kind {
            EmissionKind::Planned(i) => {
                let (text_len, sha1_len, text, has_sha1) = {
                    let pq = &sess.plan.queries[i];
                    (
                        pq.text.text_len(),
                        pq.sha1.as_ref().map(|s| s.len()),
                        pq.text,
                        pq.sha1.is_some(),
                    )
                };
                debug_assert!(!sess.batching || sess.pair_budget > 0);
                let (guid, d) = self.next_pair(sess);
                sess.pair_budget = sess.pair_budget.saturating_sub(1);
                let msg = WireMsg {
                    guid,
                    hops: 1,
                    ttl: DEFAULT_TTL - 1,
                    wire: wire_query(text_len, sha1_len),
                    payload: RecordedPayload::Query {
                        text,
                        sha1: has_sha1,
                    },
                    answer_origin: None,
                };
                self.session_send_at(node, sess, now, d, msg);
            }
            EmissionKind::Keepalive => {
                debug_assert!(!sess.batching || sess.pair_budget > 0);
                let (guid, d) = self.next_pair(sess);
                sess.pair_budget = sess.pair_budget.saturating_sub(1);
                let msg = WireMsg {
                    guid,
                    hops: 1,
                    ttl: DEFAULT_TTL - 1,
                    wire: WIRE_PING,
                    payload: RecordedPayload::Ping,
                    answer_origin: None,
                };
                self.session_send_at(node, sess, now, d, msg);
            }
            EmissionKind::RelayQuery => {
                let d = draw_relay_query(&self.vocab, &self.planner.diurnal, now, &mut sess.rng);
                let msg = WireMsg {
                    guid: d.guid,
                    hops: d.hops,
                    ttl: d.ttl,
                    wire: wire_query(d.text.text_len(), None),
                    payload: RecordedPayload::Query {
                        text: d.text,
                        sha1: false,
                    },
                    answer_origin: None,
                };
                self.session_send(node, sess, now, msg);
            }
            EmissionKind::RelayPong => {
                let d = draw_relay_pong(
                    &self.planner.diurnal,
                    &self.alloc,
                    &self.files,
                    now,
                    &mut sess.rng,
                );
                let msg = WireMsg {
                    guid: d.guid,
                    hops: d.hops,
                    ttl: d.ttl,
                    wire: WIRE_PONG,
                    payload: RecordedPayload::Pong {
                        addr: d.addr,
                        shared_files: d.files,
                    },
                    answer_origin: None,
                };
                self.session_send(node, sess, now, msg);
            }
            EmissionKind::RelayHit => {
                let d = draw_relay_hit(&self.planner.diurnal, &self.alloc, now, &mut sess.rng);
                let n = d.results.len() as u32;
                let msg = WireMsg {
                    guid: d.guid,
                    hops: d.hops,
                    ttl: d.ttl,
                    wire: WIRE_HIT_BASE + n * WIRE_RELAY_HIT_RESULT,
                    payload: RecordedPayload::QueryHit {
                        addr: d.addr,
                        results: n as u8,
                    },
                    answer_origin: None,
                };
                self.session_send(node, sess, now, msg);
            }
            EmissionKind::End => {
                // The budget counted every pre-`End` emission exactly,
                // so the batch buffer must be dry before `End` draws
                // directly from the session RNG.
                debug_assert!(
                    !sess.batching
                        || (sess.pair_budget == 0 && sess.pair_pos == sess.pair_buf.len()),
                    "gap-batch buffer not drained at session end"
                );
                if !sess.plan.vanish {
                    if sess.plan.send_bye {
                        let guid = Guid::random(&mut sess.rng);
                        let msg = WireMsg {
                            guid,
                            hops: 1,
                            ttl: DEFAULT_TTL - 1,
                            wire: WIRE_BYE,
                            payload: RecordedPayload::Bye,
                            answer_origin: None,
                        };
                        self.session_send(node, sess, now, msg);
                    }
                    let d = self.peer_latency.sample(&mut sess.rng);
                    let key = sess.next_key;
                    sess.next_key += 1;
                    self.push(now + d, node, key, Body::ConnClose(node));
                }
                return true;
            }
        }
        false
    }

    fn on_msg_arrive(&mut self, node: u32, at: SimTime, msg: WireMsg) {
        let Some(i) = self.conn_index(node) else {
            return; // message after close — TCP stragglers, unrecorded
        };
        self.conns[i].2.on_receive(at);
        let sid = self.conns[i].1;
        self.record(sid, at, &msg);
        match msg.payload {
            RecordedPayload::Ping => {
                // The collector's PONG reply: drawn, keyed, never seen.
                let _ = Guid::random(&mut self.crng);
                let _ = self.coll_latency.sample(&mut self.crng);
                let _ = self.ckey();
                self.elided += 1;
            }
            RecordedPayload::Query { .. } => {
                // Fresh GUIDs never collide, so the routing-table insert
                // always succeeds; forward when TTL allows.
                if msg.ttl > 1 {
                    let fanout = self.forward_fanout;
                    let mut sent = 0usize;
                    let mut idx = 0;
                    while idx < self.conns.len() && sent < fanout {
                        let target = self.conns[idx].0;
                        idx += 1;
                        if target == node {
                            continue;
                        }
                        let d = self.coll_latency.sample(&mut self.crng);
                        let key = self.ckey();
                        sent += 1;
                        let answers = self
                            .slot(target)
                            .as_ref()
                            .is_some_and(|s| s.plan.shared_files > 0);
                        if answers {
                            self.push(
                                at + d,
                                COLLECTOR_LANE,
                                key,
                                Body::FwdQuery {
                                    target,
                                    origin: node,
                                    guid: msg.guid,
                                },
                            );
                        } else {
                            // Delivered-but-inert (or dropped) copy.
                            self.elided += 1;
                        }
                    }
                }
            }
            RecordedPayload::QueryHit { .. } => {
                if let Some(origin) = msg.answer_origin {
                    // Reverse-route along the GUID path; the origin peer
                    // ignores hits, so the delivery itself is elided.
                    if origin != node && self.conn_index(origin).is_some() {
                        let _ = self.coll_latency.sample(&mut self.crng);
                        let _ = self.ckey();
                        self.elided += 1;
                    }
                }
            }
            RecordedPayload::Pong { .. } => {}
            RecordedPayload::Bye => {
                self.finalize(node, at, false);
            }
        }
    }

    fn on_idle_check(&mut self, node: u32, at: SimTime) {
        let Some(i) = self.conn_index(node) else {
            return; // connection already gone; the chain dies
        };
        self.timers_fired += 1;
        let action = self.conns[i].2.check(at);
        match action {
            IdleAction::CheckAt(deadline) => {
                let key = self.ckey();
                self.push(deadline, COLLECTOR_LANE, key, Body::IdleCheck(node));
            }
            IdleAction::SendProbe(deadline) => {
                let _ = Guid::random(&mut self.crng);
                let d = self.coll_latency.sample(&mut self.crng);
                let key = self.ckey();
                if self.session_alive(node) {
                    self.push(at + d, COLLECTOR_LANE, key, Body::ProbePing(node));
                } else {
                    // Probe toward a vanished peer: it would be dropped.
                    self.elided += 1;
                }
                let key = self.ckey();
                self.push(deadline, COLLECTOR_LANE, key, Body::IdleCheck(node));
            }
            IdleAction::Close => {
                let d = self.coll_latency.sample(&mut self.crng);
                let key = self.ckey();
                if self.session_alive(node) {
                    self.push(at + d, COLLECTOR_LANE, key, Body::PeerGone(node));
                } else {
                    self.elided += 1;
                }
                self.finalize(node, at, true);
            }
        }
    }
}
