//! Session arrival process.
//!
//! Connections arrive as a Poisson process whose total rate is flat over
//! the day (§4.1 observes that the number of connected peers per 5-minute
//! interval is stable) while the *regional mix* follows the diurnal model.
//! Arrivals are generated hour by hour: a Poisson count, then uniform
//! placement within the hour.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simnet::SimDuration;

/// Poisson arrival schedule generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalProcess {
    /// Mean connections per simulated day.
    pub sessions_per_day: f64,
}

impl ArrivalProcess {
    /// Create with a daily session budget.
    pub fn new(sessions_per_day: f64) -> ArrivalProcess {
        assert!(
            sessions_per_day.is_finite() && sessions_per_day >= 0.0,
            "sessions_per_day must be non-negative"
        );
        ArrivalProcess { sessions_per_day }
    }

    /// Mean arrivals per hour.
    pub fn hourly_rate(&self) -> f64 {
        self.sessions_per_day / 24.0
    }

    /// Draw the arrival offsets (within the hour, ascending) for one hour.
    pub fn arrivals_in_hour(&self, rng: &mut StdRng) -> Vec<SimDuration> {
        let n = poisson(rng, self.hourly_rate());
        let mut offs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..3_600_000u64)).collect();
        offs.sort_unstable();
        offs.into_iter().map(SimDuration::from_millis).collect()
    }
}

/// Poisson sample: Knuth's method for small λ, normal approximation above.
pub fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // numeric guard; unreachable for λ < 30
            }
        }
    }
    // Normal approximation with continuity correction.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let x = lambda + lambda.sqrt() * z + 0.5;
    if x < 0.0 {
        0
    } else {
        x as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_small_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 3.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_mean_large_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 200.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 200.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn poisson_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn arrivals_are_sorted_within_hour() {
        let a = ArrivalProcess::new(2_400.0);
        let mut rng = StdRng::seed_from_u64(4);
        let offs = a.arrivals_in_hour(&mut rng);
        // 100/hour on average.
        assert!(offs.len() > 50 && offs.len() < 160, "{}", offs.len());
        for w in offs.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for o in &offs {
            assert!(o.as_millis() < 3_600_000);
        }
    }

    #[test]
    fn hourly_rate() {
        assert!((ArrivalProcess::new(24_000.0).hourly_rate() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_rate() {
        let _ = ArrivalProcess::new(-1.0);
    }
}
