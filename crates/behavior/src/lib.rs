//! Ground-truth generative behavior model.
//!
//! The paper measured real users through a passive ultrapeer; we have no
//! live Gnutella network, so this crate *generates* the population the
//! measurement observes. It is the closed loop's ground truth: the
//! parameters injected here (anchored to the paper's appendix tables and
//! figure-level statistics) are what the `p2pq-analysis` pipeline must
//! recover through the same methodology the paper used.
//!
//! Two layers are modeled separately, because separating them is the
//! paper's first contribution (§3.3):
//!
//! * **User behavior** ([`session`], [`params`]) — passive/active choice,
//!   passive session durations, queries per active session, time to first
//!   query, query interarrival times, time after last query, and query
//!   content drawn from a drifting per-region vocabulary ([`vocabulary`]).
//! * **Client-software behavior** ([`clients`]) — the automation artifacts
//!   the filter rules must remove: SHA1 source-search queries (rule 1),
//!   automatic re-sending of earlier queries (rule 2), quick system-level
//!   disconnects (rule 3), sub-second re-query bursts at connect (rule 4),
//!   and fixed-interval periodic re-queries (rule 5).
//!
//! [`peer::ClientPeer`] executes a generated [`session::SessionPlan`]
//! against the measurement peer over the simulated network, and
//! [`driver`] runs whole multi-day populations.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrivals;
pub mod clients;
pub mod driver;
pub mod files;
pub mod hybrid;
pub mod params;
pub mod peer;
pub mod session;
pub mod stream;
pub mod vocabulary;

pub use clients::{ClientPopulation, ClientProfile};
pub use driver::{
    run_population, run_population_into, run_population_sharded, run_population_sharded_into,
    run_population_sharded_with_stats, run_population_with_stats, shard_worker_threads,
    CampaignStats, Fidelity, PopulationConfig,
};
pub use files::SharedFilesModel;
pub use params::BehaviorParams;
pub use peer::{ClientPeer, PeerEnv, RelayRates};
pub use session::{PlannedQuery, QueryOrigin, SessionKind, SessionPlan, SessionPlanner};
pub use vocabulary::{QueryClass, Vocabulary, VocabularyConfig};
