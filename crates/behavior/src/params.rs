//! User-behavior parameters, anchored to the paper's appendix.
//!
//! Tables A.1–A.5 give fitted models for North American peers; the other
//! regions are parameterized from the figure-level statistics the paper
//! reports (Figures 5–9): Asian sessions are shorter and close sooner,
//! European sessions issue more queries with shorter interarrival times,
//! and so on. Every number below is traceable to a sentence or table in
//! the paper; see the field docs.

use geoip::Region;
use serde::{Deserialize, Serialize};
use stats::dist::{BodyTail, Lognormal, Pareto, Truncated, Weibull};

/// Number-of-queries class used by the conditional models of Tables A.3
/// (time until first query) — `<3`, `=3`, `>3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FirstQueryClass {
    /// Fewer than 3 queries in the session.
    Lt3,
    /// Exactly 3 queries.
    Eq3,
    /// More than 3 queries.
    Gt3,
}

impl FirstQueryClass {
    /// Classify a session's query count.
    pub fn of(n_queries: u32) -> Self {
        match n_queries {
            0..=2 => FirstQueryClass::Lt3,
            3 => FirstQueryClass::Eq3,
            _ => FirstQueryClass::Gt3,
        }
    }
}

/// Number-of-queries class used by Table A.5 (time after last query) —
/// `1`, `2–7`, `>7`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LastQueryClass {
    /// Exactly one query.
    One,
    /// Two to seven queries.
    TwoToSeven,
    /// More than seven queries.
    Gt7,
}

impl LastQueryClass {
    /// Classify a session's query count.
    pub fn of(n_queries: u32) -> Self {
        match n_queries {
            0 | 1 => LastQueryClass::One,
            2..=7 => LastQueryClass::TwoToSeven,
            _ => LastQueryClass::Gt7,
        }
    }
}

/// The complete user-behavior parameter set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BehaviorParams {
    /// Probability that a raw connection is a system-level quick
    /// disconnect (§3.3 rule 3: ≈70 % of connections end within 64 s).
    pub quick_disconnect_prob: f64,
    /// Probability a non-quick session is passive, per region
    /// (§4.3 / Figure 4: NA 80–85 %, EU 75–80 %, Asia 80–90 %).
    pub passive_prob: [f64; 4],
    /// Fraction of sessions ending silently (no TCP teardown observed;
    /// the measurement peer probe-closes them ≈30 s later, §3.2).
    pub vanish_prob: f64,
    /// Of the sessions that do tear down visibly, the fraction that send a
    /// spec-compliant BYE first — "many Gnutella clients do not terminate
    /// an overlay connection by sending a BYE message" (§3.2), so this is
    /// small.
    pub bye_prob: f64,
    /// Fraction of connections in ultrapeer mode (Table 1: ≈40 %).
    pub ultrapeer_prob: f64,
    /// Client keepalive PING interval bounds, seconds.
    pub keepalive_secs: (f64, f64),
}

impl Default for BehaviorParams {
    fn default() -> Self {
        BehaviorParams {
            quick_disconnect_prob: 0.70,
            // NA, EU, Asia, Other.
            passive_prob: [0.825, 0.775, 0.85, 0.82],
            vanish_prob: 0.80,
            bye_prob: 0.10,
            ultrapeer_prob: 0.40,
            keepalive_secs: (18.0, 28.0),
        }
    }
}

impl BehaviorParams {
    /// Passive probability for a region.
    pub fn passive_prob(&self, region: Region) -> f64 {
        self.passive_prob[region.index()]
    }

    /// Quick-disconnect duration model (§3.3): 29 % of *all* connections
    /// end within 10 s, 32 % within 20–25 s, ~9 % within 25–64 s (the three
    /// weights renormalized within the quick class).
    /// Returns `(weight, lo_secs, hi_secs)` mixture components.
    pub fn quick_disconnect_mixture(&self) -> [(f64, f64, f64); 3] {
        [
            (0.29 / 0.70, 1.5, 10.0),
            (0.32 / 0.70, 20.0, 25.0),
            (0.09 / 0.70, 25.0, 63.0),
        ]
    }

    /// Passive connected-session duration model (Table A.1 for North
    /// America; other regions scaled to match Figure 5(a): Asia 85 % < 2
    /// min, NA 75 %, EU 55 % — with the non-peak body weight reduced as in
    /// Table A.1's 75 % → 55 % peak → non-peak shift).
    ///
    /// Durations are in seconds; the body is additionally truncated below
    /// at 64 s because shorter connections are quick disconnects, modeled
    /// separately.
    pub fn passive_duration(
        &self,
        region: Region,
        peak: bool,
    ) -> BodyTail<Truncated<Lognormal>, Lognormal> {
        // (body weight, body LN, tail LN) per region × period.
        let (w, body, tail) = match (region, peak) {
            (Region::NorthAmerica | Region::Other, true) => (0.75, (2.108, 2.502), (6.397, 2.749)),
            (Region::NorthAmerica | Region::Other, false) => (0.55, (2.201, 2.383), (6.817, 2.848)),
            // Europe: longer sessions — smaller body weight, heavier tail.
            (Region::Europe, true) => (0.55, (2.201, 2.383), (6.90, 2.80)),
            (Region::Europe, false) => (0.42, (2.201, 2.383), (7.25, 2.85)),
            // Asia: shorter sessions — larger body weight, lighter tail.
            (Region::Asia, true) => (0.85, (2.05, 2.45), (5.80, 2.60)),
            (Region::Asia, false) => (0.78, (2.10, 2.45), (6.05, 2.70)),
        };
        let body_ln = Lognormal::new(body.0, body.1).expect("body params valid");
        let tail_ln = Lognormal::new(tail.0, tail.1).expect("tail params valid");
        let body_trunc = Truncated::new(body_ln, 64.0, 120.0).expect("body window carries mass");
        BodyTail::new(body_trunc, tail_ln, 120.0, w).expect("composite valid")
    }

    /// Queries per active session (Table A.2, exact paper parameters).
    /// Draw with `.sample(rng).ceil() as u32`.
    pub fn queries_per_session(&self, region: Region) -> Lognormal {
        let (mu, sigma) = match region {
            Region::NorthAmerica | Region::Other => (-0.0673, 1.360),
            Region::Europe => (0.520, 1.306),
            Region::Asia => (-1.029, 1.618),
        };
        Lognormal::new(mu, sigma).expect("Table A.2 params valid")
    }

    /// Hard cap on user queries per session (numerical guard for the
    /// heavy lognormal tail; Figure 6 x-axes end near 100).
    pub const MAX_USER_QUERIES: u32 = 120;

    /// Time until first query (Table A.3: Weibull body ‖ lognormal tail,
    /// conditioned on period and query-count class; exact NA parameters,
    /// region adjustments per Figure 7(a): Asia's first query arrives
    /// sooner — lighter tail; Europe's tail stretches toward 1000 s).
    pub fn time_to_first_query(
        &self,
        region: Region,
        peak: bool,
        class: FirstQueryClass,
    ) -> BodyTail<Weibull, Lognormal> {
        use FirstQueryClass::*;
        // (weibull α, weibull λ, LN σ, LN µ, split) from Table A.3.
        let (wa, wl, ls, lm, split) = match (peak, class) {
            (true, Lt3) => (1.477, 0.005252, 2.905, 5.091, 45.0),
            (true, Eq3) => (1.261, 0.01081, 2.045, 6.303, 45.0),
            (true, Gt3) => (0.9821, 0.02662, 2.359, 6.301, 45.0),
            (false, Lt3) => (1.159, 0.01779, 3.384, 5.144, 120.0),
            (false, Eq3) => (1.207, 0.01446, 2.324, 6.400, 120.0),
            (false, Gt3) => (0.9351, 0.03380, 2.463, 7.186, 120.0),
        };
        // Region adjustment on the tail (Figure 7(a)).
        let lm = match region {
            Region::Asia => lm - 1.35,
            Region::Europe => lm + 0.25,
            _ => lm,
        };
        // Body weight: ≈40 % of first queries within 30 s in every region
        // (Figure 7(a)); peak sessions front-load slightly more.
        let w = if peak { 0.50 } else { 0.42 };
        let body = Weibull::new(wa, wl).expect("Table A.3 Weibull valid");
        let tail = Lognormal::new(lm, ls).expect("Table A.3 lognormal valid");
        BodyTail::new(body, tail, split, w).expect("composite valid")
    }

    /// Query interarrival time (Table A.4: lognormal body ‖ Pareto tail at
    /// 103 s; exact NA parameters). Body weight per region from Figure
    /// 8(a): interarrivals below ~100 s are 90 % in Europe, 80 % in Asia,
    /// 70 % in North America. For Europe only, the body is additionally
    /// conditioned on the session's query count (Figure 8(b)): sessions
    /// with many queries have shorter interarrivals.
    pub fn interarrival(
        &self,
        region: Region,
        peak: bool,
        n_queries: u32,
    ) -> BodyTail<Lognormal, Pareto> {
        let (mu, sigma, pareto_alpha) = if peak {
            (3.353, 1.625, 0.9041)
        } else {
            (2.933, 1.410, 1.143)
        };
        let (w, mu) = match region {
            Region::NorthAmerica | Region::Other => (0.70, mu),
            Region::Asia => (0.80, mu - 0.35),
            Region::Europe => {
                // Figure 8(b): EU interarrival conditioned on #queries.
                let shift = match n_queries {
                    0..=2 => 0.25,
                    3..=7 => 0.0,
                    _ => -0.55,
                };
                (0.90, mu - 0.70 + shift)
            }
        };
        let body = Lognormal::new(mu, sigma).expect("Table A.4 body valid");
        let tail = Pareto::new(pareto_alpha, 103.0).expect("Table A.4 tail valid");
        BodyTail::new(body, tail, 103.0, w).expect("composite valid")
    }

    /// Time after the last query (Table A.5: lognormal, conditioned on
    /// period and query-count class; exact NA parameters, Asia closes
    /// sessions faster per Figure 9(a)).
    pub fn time_after_last(&self, region: Region, peak: bool, class: LastQueryClass) -> Lognormal {
        use LastQueryClass::*;
        let (sigma, mu) = match (peak, class) {
            (true, One) => (2.361, 4.879),
            (true, TwoToSeven) => (2.259, 5.686),
            (true, Gt7) => (2.145, 6.107),
            (false, One) => (2.162, 4.760),
            (false, TwoToSeven) => (2.156, 5.672),
            (false, Gt7) => (2.286, 6.036),
        };
        let mu = match region {
            Region::Asia => mu - 0.85,
            _ => mu,
        };
        Lognormal::new(mu, sigma).expect("Table A.5 params valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use stats::dist::Continuous;

    #[test]
    fn first_query_classes() {
        assert_eq!(FirstQueryClass::of(0), FirstQueryClass::Lt3);
        assert_eq!(FirstQueryClass::of(2), FirstQueryClass::Lt3);
        assert_eq!(FirstQueryClass::of(3), FirstQueryClass::Eq3);
        assert_eq!(FirstQueryClass::of(4), FirstQueryClass::Gt3);
        assert_eq!(LastQueryClass::of(1), LastQueryClass::One);
        assert_eq!(LastQueryClass::of(7), LastQueryClass::TwoToSeven);
        assert_eq!(LastQueryClass::of(8), LastQueryClass::Gt7);
    }

    #[test]
    fn quick_disconnect_mixture_normalizes() {
        let p = BehaviorParams::default();
        let total: f64 = p.quick_disconnect_mixture().iter().map(|(w, _, _)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (_, lo, hi) in p.quick_disconnect_mixture() {
            assert!(lo < hi && hi < 64.0);
        }
    }

    #[test]
    fn passive_duration_region_ordering() {
        // Figure 5(a): P(duration < 2 min) — Asia 0.85, NA 0.75, EU 0.55
        // during peak periods.
        let p = BehaviorParams::default();
        let at2min = |r| p.passive_duration(r, true).cdf(120.0);
        assert!((at2min(Region::Asia) - 0.85).abs() < 1e-9);
        assert!((at2min(Region::NorthAmerica) - 0.75).abs() < 1e-9);
        assert!((at2min(Region::Europe) - 0.55).abs() < 1e-9);
        // Durations never drop below the 64 s rule-3 boundary.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for r in Region::ALL {
            for peak in [true, false] {
                let d = p.passive_duration(r, peak);
                for x in d.sample_n(&mut rng, 500) {
                    assert!(x >= 64.0, "{r} {peak}: duration {x}");
                }
            }
        }
    }

    #[test]
    fn passive_duration_long_tail_exists() {
        // §4.4: sessions of 17–50 h make up ≈1 % in every region.
        let p = BehaviorParams::default();
        for r in [Region::NorthAmerica, Region::Europe, Region::Asia] {
            let d = p.passive_duration(r, false);
            let frac_over_17h = d.ccdf(17.0 * 3600.0);
            assert!(
                frac_over_17h > 0.002 && frac_over_17h < 0.08,
                "{r}: {frac_over_17h}"
            );
        }
    }

    #[test]
    fn queries_per_session_region_ordering() {
        // Figure 6(a): fraction issuing <5 queries — Asia 92 %, NA 80 %,
        // EU 70 %. With ceil() discretization, X ≤ 4 ⟺ sample ≤ 4; the
        // Table A.2 lognormals land a few points above the paper's quoted
        // CCDF values (the paper's own Figure A.1(a) fit shows the same
        // offset), so the bands here are generous.
        let p = BehaviorParams::default();
        let lt5 = |r: Region| p.queries_per_session(r).cdf(4.0);
        assert!(
            (lt5(Region::Asia) - 0.92).abs() < 0.05,
            "AS {}",
            lt5(Region::Asia)
        );
        assert!(
            (lt5(Region::NorthAmerica) - 0.83).abs() < 0.05,
            "NA {}",
            lt5(Region::NorthAmerica)
        );
        assert!(
            (lt5(Region::Europe) - 0.72).abs() < 0.06,
            "EU {}",
            lt5(Region::Europe)
        );
        // Ordering: EU issues most queries.
        assert!(
            p.queries_per_session(Region::Europe).mean().unwrap()
                > p.queries_per_session(Region::NorthAmerica).mean().unwrap()
        );
    }

    #[test]
    fn interarrival_region_ordering() {
        // Figure 8(a): P(interarrival < 100 s) ≈ 0.9 EU / 0.8 Asia / 0.7 NA.
        let p = BehaviorParams::default();
        let below = |r| p.interarrival(r, true, 5).cdf(103.0);
        assert!((below(Region::Europe) - 0.90).abs() < 1e-9);
        assert!((below(Region::Asia) - 0.80).abs() < 1e-9);
        assert!((below(Region::NorthAmerica) - 0.70).abs() < 1e-9);
    }

    #[test]
    fn eu_interarrival_conditioned_on_query_count() {
        // Figure 8(b): many-query EU sessions have shorter interarrivals.
        let p = BehaviorParams::default();
        let few = p.interarrival(Region::Europe, true, 2);
        let many = p.interarrival(Region::Europe, true, 20);
        assert!(few.quantile(0.5) > many.quantile(0.5));
        // NA is NOT conditioned (paper's explicit finding).
        let na_few = p.interarrival(Region::NorthAmerica, true, 2);
        let na_many = p.interarrival(Region::NorthAmerica, true, 20);
        assert_eq!(na_few.quantile(0.5), na_many.quantile(0.5));
    }

    #[test]
    fn time_after_last_increases_with_queries() {
        // Figure 9(b): positive correlation with query count.
        let p = BehaviorParams::default();
        let m1 = p
            .time_after_last(Region::NorthAmerica, true, LastQueryClass::One)
            .median();
        let m2 = p
            .time_after_last(Region::NorthAmerica, true, LastQueryClass::TwoToSeven)
            .median();
        let m3 = p
            .time_after_last(Region::NorthAmerica, true, LastQueryClass::Gt7)
            .median();
        assert!(m1 < m2 && m2 < m3);
        // Asia closes faster (Figure 9(a)).
        let asia = p
            .time_after_last(Region::Asia, true, LastQueryClass::TwoToSeven)
            .ccdf(1000.0);
        let na = p
            .time_after_last(Region::NorthAmerica, true, LastQueryClass::TwoToSeven)
            .ccdf(1000.0);
        assert!(asia < na);
    }

    #[test]
    fn time_to_first_query_region_effects() {
        let p = BehaviorParams::default();
        // Asia's tail is lighter.
        let asia = p.time_to_first_query(Region::Asia, true, FirstQueryClass::Lt3);
        let na = p.time_to_first_query(Region::NorthAmerica, true, FirstQueryClass::Lt3);
        assert!(asia.quantile(0.9) < na.quantile(0.9));
        // Conditioning: more queries ⇒ later first query allowed (Fig 7(b)).
        let lt3 = p.time_to_first_query(Region::NorthAmerica, true, FirstQueryClass::Lt3);
        let gt3 = p.time_to_first_query(Region::NorthAmerica, true, FirstQueryClass::Gt3);
        assert!(gt3.quantile(0.9) > lt3.quantile(0.9));
    }

    #[test]
    fn serde_round_trips() {
        let p = BehaviorParams::default();
        let j = serde_json::to_string(&p).unwrap();
        let back: BehaviorParams = serde_json::from_str(&j).unwrap();
        assert_eq!(back.quick_disconnect_prob, p.quick_disconnect_prob);
    }
}
