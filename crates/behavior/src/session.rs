//! Session planning: one full generative draw per connected session.
//!
//! A [`SessionPlan`] is everything a simulated peer will do: its region,
//! client software, session kind (quick disconnect / passive / active),
//! duration, and the timed sequence of queries — each tagged with its
//! ground-truth [`QueryOrigin`] so integration tests can verify that the
//! analysis filters recover exactly the user-generated subset.

use crate::clients::ClientPopulation;
use crate::files::SharedFilesModel;
use crate::params::{BehaviorParams, FirstQueryClass, LastQueryClass};
use crate::vocabulary::Vocabulary;
use geoip::{DiurnalModel, Region};
use gnutella::QueryId;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simnet::SimDuration;
use std::sync::Arc;

/// Ground truth for why a query message exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryOrigin {
    /// A genuine user search issued during the session.
    User,
    /// Automatic client re-send of an earlier user query (rule 2 target).
    AutoRepeat,
    /// SHA1 source-search for a known file (rule 1 target).
    AutoSha1,
    /// Sub-second re-query burst at connect (rule 4 target) — re-sends of
    /// searches the user issued *before* connecting, so they carry real
    /// user interest (counted in popularity, excluded from interarrival).
    AutoBurst,
    /// Fixed-interval periodic re-query (rule 5 target), same caveat.
    AutoPeriodic,
    /// Stray automated query inside a quick-disconnect session.
    AutoQuick,
}

impl QueryOrigin {
    /// True for origins whose query text reflects user interest (§3.3:
    /// rules 4/5 queries count toward popularity and #queries).
    pub fn reflects_user_interest(self) -> bool {
        matches!(
            self,
            QueryOrigin::User | QueryOrigin::AutoBurst | QueryOrigin::AutoPeriodic
        )
    }
}

/// One query the peer will send, at `offset` after session start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedQuery {
    /// Offset from session start.
    pub offset: SimDuration,
    /// Interned keyword text (empty for SHA1 re-queries).
    pub text: QueryId,
    /// `urn:sha1:` extension, if any.
    pub sha1: Option<String>,
    /// Ground-truth origin.
    pub origin: QueryOrigin,
}

/// Session classification in the generative model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionKind {
    /// System-level quick disconnect (< 64 s, rule 3 target).
    Quick,
    /// Connected but issues no user queries.
    Passive,
    /// Issues at least one user query.
    Active,
}

/// The complete plan for one connected session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionPlan {
    /// Peer region.
    pub region: Region,
    /// Index into the client population.
    pub client_idx: usize,
    /// The client's `User-Agent`.
    pub user_agent: String,
    /// Session kind (ground truth).
    pub kind: SessionKind,
    /// Planned session duration (connect → teardown/vanish).
    pub duration: SimDuration,
    /// Timed queries, sorted by offset.
    pub queries: Vec<PlannedQuery>,
    /// True if the peer vanishes silently (no TCP teardown) — the
    /// measurement peer will probe-close ≈30 s later.
    pub vanish: bool,
    /// True if the peer sends a spec-compliant BYE before tearing down
    /// (rare in 2004 practice, §3.2).
    pub send_bye: bool,
    /// Connection advertises ultrapeer mode.
    pub ultrapeer: bool,
    /// Shared-file count advertised in PONGs.
    pub shared_files: u32,
    /// Ground-truth number of *user* queries.
    pub user_query_count: u32,
    /// Whether the session started in the region's peak period.
    pub peak: bool,
}

/// Draws session plans from the behavior model.
#[derive(Debug, Clone)]
pub struct SessionPlanner {
    /// User-behavior parameters.
    pub params: BehaviorParams,
    /// Client-software population.
    pub clients: ClientPopulation,
    /// Query vocabulary (shared across the population).
    pub vocab: Arc<Vocabulary>,
    /// Shared-files model.
    pub files: SharedFilesModel,
    /// Diurnal model (peak classification).
    pub diurnal: DiurnalModel,
}

impl SessionPlanner {
    /// Planner with all paper defaults.
    pub fn paper_default(vocab: Arc<Vocabulary>) -> SessionPlanner {
        SessionPlanner {
            params: BehaviorParams::default(),
            clients: ClientPopulation::paper_default(),
            vocab,
            files: SharedFilesModel::default(),
            diurnal: DiurnalModel::paper_default(),
        }
    }

    /// Plan a session starting on `day` at measurement-local `hour` for a
    /// peer in `region`.
    pub fn plan(&self, day: usize, hour: u32, region: Region, rng: &mut StdRng) -> SessionPlan {
        let peak = self.diurnal.is_peak(region, hour);
        let client_idx = self.clients.pick(region, rng);
        let client = self.clients.profile(client_idx).clone();
        let vanish = rng.gen::<f64>() < self.params.vanish_prob;
        let send_bye = !vanish && rng.gen::<f64>() < self.params.bye_prob;
        let ultrapeer = rng.gen::<f64>() < self.params.ultrapeer_prob;
        let shared_files = self.files.sample(rng);

        let base = SessionPlan {
            region,
            client_idx,
            user_agent: client.user_agent.clone(),
            kind: SessionKind::Quick,
            duration: SimDuration::ZERO,
            queries: Vec::new(),
            vanish,
            send_bye,
            ultrapeer,
            shared_files,
            user_query_count: 0,
            peak,
        };

        // 1. Quick system disconnect?
        if rng.gen::<f64>() < self.params.quick_disconnect_prob {
            return self.plan_quick(base, day, rng);
        }
        // 2. Passive or active?
        if rng.gen::<f64>() < self.params.passive_prob(region) {
            self.plan_passive(base, rng)
        } else {
            self.plan_active(base, client, day, rng)
        }
    }

    fn plan_quick(&self, mut plan: SessionPlan, day: usize, rng: &mut StdRng) -> SessionPlan {
        plan.kind = SessionKind::Quick;
        let mix = self.params.quick_disconnect_mixture();
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut secs = 30.0;
        for (w, lo, hi) in mix {
            acc += w;
            if u < acc {
                secs = rng.gen_range(lo..hi);
                break;
            }
        }
        plan.duration = SimDuration::from_secs_f64(secs);
        // A small fraction of quick sessions carry stray automated queries
        // (Table 2 rule 3 removed ≈0.1 queries per discarded session).
        if rng.gen::<f64>() < 0.08 && secs > 4.0 {
            let n = rng.gen_range(1..=2);
            for _ in 0..n {
                let at = rng.gen_range(1.0..secs - 1.0);
                let text = self.vocab.sample_query(plan.region, day, rng);
                plan.queries.push(PlannedQuery {
                    offset: SimDuration::from_secs_f64(at),
                    text,
                    sha1: None,
                    origin: QueryOrigin::AutoQuick,
                });
            }
            plan.queries.sort_by_key(|q| q.offset);
        }
        plan
    }

    fn plan_passive(&self, mut plan: SessionPlan, rng: &mut StdRng) -> SessionPlan {
        use stats::dist::Continuous;
        plan.kind = SessionKind::Passive;
        let d = self.params.passive_duration(plan.region, plan.peak);
        // §4.4: the longest observed sessions run 17–50 hours; cap the
        // generative support at 50 h so immortal sessions cannot pin the
        // measurement peer's 200 connection slots forever.
        plan.duration = SimDuration::from_secs_f64(d.sample(rng).min(50.0 * 3600.0));
        plan
    }

    fn plan_active(
        &self,
        mut plan: SessionPlan,
        client: crate::clients::ClientProfile,
        day: usize,
        rng: &mut StdRng,
    ) -> SessionPlan {
        use stats::dist::Continuous;
        plan.kind = SessionKind::Active;
        let region = plan.region;
        let peak = plan.peak;

        // --- User layer -------------------------------------------------
        let n_user = (self.params.queries_per_session(region).sample(rng).ceil() as u32)
            .clamp(1, BehaviorParams::MAX_USER_QUERIES);
        plan.user_query_count = n_user;

        let t_first = self
            .params
            .time_to_first_query(region, peak, FirstQueryClass::of(n_user))
            .sample(rng)
            .min(100_000.0);
        let ia = self.params.interarrival(region, peak, n_user);
        let mut times = Vec::with_capacity(n_user as usize);
        let mut t = t_first;
        times.push(t);
        for _ in 1..n_user {
            t += ia.sample(rng).min(20_000.0);
            times.push(t);
        }
        let t_after = self
            .params
            .time_after_last(region, peak, LastQueryClass::of(n_user))
            .sample(rng)
            .min(100_000.0);
        let duration = t + t_after;
        plan.duration = SimDuration::from_secs_f64(duration);

        // User query texts: mostly distinct searches.
        let mut texts: Vec<QueryId> = Vec::with_capacity(times.len());
        for _ in &times {
            let mut q = self.vocab.sample_query(region, day, rng);
            for _ in 0..3 {
                if !texts.contains(&q) {
                    break;
                }
                q = self.vocab.sample_query(region, day, rng);
            }
            texts.push(q);
        }
        for (at, &text) in times.iter().zip(&texts) {
            plan.queries.push(PlannedQuery {
                offset: SimDuration::from_secs_f64(*at),
                text,
                sha1: None,
                origin: QueryOrigin::User,
            });
        }

        // --- Client automation layer ------------------------------------
        // Rule 2 targets: automatic re-sends of earlier user queries.
        for (at, &text) in times.iter().zip(&texts) {
            if rng.gen::<f64>() < client.repeat_prob {
                let k = geometric(rng, client.repeat_mean).min(10);
                for _ in 0..k {
                    let hi = (duration * 0.97).max(at + 6.0);
                    let rt = rng.gen_range(*at + 5.0..hi.max(at + 5.1));
                    plan.queries.push(PlannedQuery {
                        offset: SimDuration::from_secs_f64(rt),
                        text,
                        sha1: None,
                        origin: QueryOrigin::AutoRepeat,
                    });
                }
            }
        }
        // Rule 1 targets: SHA1 source searches.
        if rng.gen::<f64>() < client.sha1_session_prob {
            let m = geometric(rng, client.sha1_mean).min(14);
            for _ in 0..m {
                let hi = (duration * 0.97).max(t_first + 2.0);
                let at = rng.gen_range(t_first..hi.max(t_first + 0.1));
                plan.queries.push(PlannedQuery {
                    offset: SimDuration::from_secs_f64(at),
                    text: QueryId::empty(),
                    sha1: Some(synth_sha1(rng)),
                    origin: QueryOrigin::AutoSha1,
                });
            }
        }
        // Rule 4 targets: sub-second burst at connect (pre-connect
        // searches re-sent). Distinct texts so rule 2 does not mask them.
        if rng.gen::<f64>() < client.burst_prob && client.burst_len.1 > 0 {
            let b = rng.gen_range(client.burst_len.0..=client.burst_len.1);
            let mut at = rng.gen_range(1.0..3.0);
            // The burst replays the user's pre-connect search list: the
            // entries are *distinct* keyword sets (rule 2 would silently
            // absorb repeats, hiding the rule-4 signature the paper
            // measured). Rejection-sample against the texts already in the
            // burst; on persistent collision (tiny class vocabularies) the
            // duplicate is kept and rule 2 removes it downstream.
            let mut seen: std::collections::HashSet<QueryId> = std::collections::HashSet::new();
            for _ in 0..b {
                if at >= duration * 0.95 {
                    break; // burst must fit inside the session
                }
                let mut text = self.vocab.sample_query(region, day, rng);
                for _ in 0..8 {
                    if !seen.contains(&text) {
                        break;
                    }
                    text = self.vocab.sample_query(region, day, rng);
                }
                seen.insert(text);
                plan.queries.push(PlannedQuery {
                    offset: SimDuration::from_secs_f64(at),
                    text,
                    sha1: None,
                    origin: QueryOrigin::AutoBurst,
                });
                at += rng.gen_range(0.25..0.95);
            }
        }
        // Rule 5 targets: fixed-interval periodic re-queries, placed as a
        // train starting shortly after connect.
        if rng.gen::<f64>() < client.periodic_prob {
            let interval = client.periodic_interval_secs;
            let n_texts = rng.gen_range(2..=4usize);
            let train: Vec<QueryId> = (0..n_texts)
                .map(|_| self.vocab.sample_query(region, day, rng))
                .collect();
            let start = rng.gen_range(4.0..8.0);
            let max_train = 40;
            let mut at = start;
            let mut k = 0;
            while at < duration * 0.9 && k < max_train {
                plan.queries.push(PlannedQuery {
                    offset: SimDuration::from_secs_f64(at),
                    text: train[k % n_texts],
                    sha1: None,
                    origin: QueryOrigin::AutoPeriodic,
                });
                at += interval;
                k += 1;
            }
        }

        // Automation jitter may overshoot very short sessions; such
        // messages would never be sent before teardown.
        let duration = plan.duration;
        plan.queries.retain(|q| q.offset <= duration);
        plan.queries.sort_by_key(|q| q.offset);
        plan
    }
}

/// Geometric sample with the given mean (≥ 1).
fn geometric(rng: &mut StdRng, mean: f64) -> u32 {
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    ((u.ln() / (1.0 - p).ln()).floor() as u32).saturating_add(1)
}

/// Synthesize a SHA1 urn.
fn synth_sha1(rng: &mut StdRng) -> String {
    const B32: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ234567";
    let mut s = String::with_capacity(41);
    s.push_str("urn:sha1:");
    for _ in 0..32 {
        s.push(B32[rng.gen_range(0..32)] as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn planner() -> SessionPlanner {
        let cfg = crate::vocabulary::VocabularyConfig {
            daily_sizes: [300, 280, 60, 30, 3, 3, 2],
            n_days: 4,
            ..Default::default()
        };
        SessionPlanner::paper_default(Arc::new(Vocabulary::build(1, cfg)))
    }

    fn plans(n: usize, region: Region, hour: u32) -> Vec<SessionPlan> {
        let p = planner();
        let mut rng = StdRng::seed_from_u64(11);
        (0..n).map(|_| p.plan(0, hour, region, &mut rng)).collect()
    }

    #[test]
    fn kind_mix_matches_targets() {
        let ps = plans(8_000, Region::NorthAmerica, 20);
        let quick = ps.iter().filter(|p| p.kind == SessionKind::Quick).count() as f64;
        let passive = ps.iter().filter(|p| p.kind == SessionKind::Passive).count() as f64;
        let active = ps.iter().filter(|p| p.kind == SessionKind::Active).count() as f64;
        let n = ps.len() as f64;
        assert!((quick / n - 0.70).abs() < 0.02, "quick {}", quick / n);
        // Of the non-quick sessions, ≈82.5 % passive for NA.
        let frac_passive = passive / (passive + active);
        assert!(
            (frac_passive - 0.825).abs() < 0.03,
            "passive {frac_passive}"
        );
    }

    #[test]
    fn quick_sessions_are_short_with_paper_breakdown() {
        let ps = plans(8_000, Region::NorthAmerica, 20);
        let quick: Vec<_> = ps.iter().filter(|p| p.kind == SessionKind::Quick).collect();
        let lt10 = quick
            .iter()
            .filter(|p| p.duration.as_secs_f64() < 10.0)
            .count() as f64;
        for p in &quick {
            assert!(p.duration.as_secs_f64() < 64.0);
        }
        // §3.3: 29 % of all connections (= 29/70 of quick) end < 10 s.
        let frac = lt10 / quick.len() as f64;
        assert!((frac - 0.29 / 0.70).abs() < 0.04, "lt10 {frac}");
    }

    #[test]
    fn passive_sessions_have_no_queries_and_64s_floor() {
        let ps = plans(6_000, Region::Europe, 12);
        for p in ps.iter().filter(|p| p.kind == SessionKind::Passive) {
            assert!(p.queries.is_empty());
            assert!(p.duration.as_secs_f64() >= 64.0);
            assert_eq!(p.user_query_count, 0);
        }
    }

    #[test]
    fn active_sessions_are_well_formed() {
        let ps = plans(6_000, Region::NorthAmerica, 20);
        for p in ps.iter().filter(|p| p.kind == SessionKind::Active) {
            assert!(p.user_query_count >= 1);
            let users: Vec<_> = p
                .queries
                .iter()
                .filter(|q| q.origin == QueryOrigin::User)
                .collect();
            assert_eq!(users.len() as u32, p.user_query_count);
            // Sorted by offset; all within the session.
            let mut prev = SimDuration::ZERO;
            for q in &p.queries {
                assert!(q.offset >= prev);
                prev = q.offset;
                assert!(
                    q.offset <= p.duration,
                    "query at {:?} beyond duration {:?}",
                    q.offset,
                    p.duration
                );
            }
            // SHA1 queries have empty text + urn.
            for q in &p.queries {
                if q.origin == QueryOrigin::AutoSha1 {
                    assert!(q.text.is_empty());
                    assert!(q.sha1.as_deref().unwrap().starts_with("urn:sha1:"));
                } else {
                    assert!(q.sha1.is_none());
                }
            }
        }
    }

    #[test]
    fn automation_layers_present_in_population() {
        let ps = plans(6_000, Region::NorthAmerica, 20);
        let count = |o: QueryOrigin| {
            ps.iter()
                .flat_map(|p| &p.queries)
                .filter(|q| q.origin == o)
                .count()
        };
        assert!(count(QueryOrigin::User) > 500);
        assert!(count(QueryOrigin::AutoRepeat) > 200, "need rule-2 traffic");
        assert!(count(QueryOrigin::AutoSha1) > 100, "need rule-1 traffic");
        assert!(count(QueryOrigin::AutoBurst) > 50, "need rule-4 traffic");
        assert!(count(QueryOrigin::AutoPeriodic) > 50, "need rule-5 traffic");
    }

    #[test]
    fn asia_has_burst_heavy_sessions() {
        // Figure 6(c): ≈4 % of Asian sessions exceed 100 raw queries when
        // rules 4/5 are not applied.
        let ps = plans(20_000, Region::Asia, 13);
        let active: Vec<_> = ps
            .iter()
            .filter(|p| p.kind == SessionKind::Active)
            .collect();
        let heavy = active.iter().filter(|p| p.queries.len() > 100).count() as f64;
        let frac = heavy / active.len() as f64;
        assert!(frac > 0.01, "heavy-burst fraction {frac}");
    }

    #[test]
    fn geometric_mean_is_right() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| u64::from(geometric(&mut rng, 2.5))).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean {mean}");
        assert_eq!(geometric(&mut rng, 0.5), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = planner();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let pa = p.plan(1, 13, Region::Europe, &mut a);
        let pb = p.plan(1, 13, Region::Europe, &mut b);
        assert_eq!(pa, pb);
    }
}
