//! Client-software profiles.
//!
//! §3.3 attributes each query anomaly to specific client implementations
//! identified by their `User-Agent` header. This module models a 2004-era
//! client population with per-client automation behaviors; the filter
//! rules of the analysis crate must remove exactly the traffic these
//! behaviors inject.

use geoip::Region;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Automation behavior of one client implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientProfile {
    /// `User-Agent` string sent in the handshake.
    pub user_agent: String,
    /// Probability that an active session issues SHA1 source-search
    /// queries (rule 1 traffic: re-queries for known files during
    /// downloads).
    pub sha1_session_prob: f64,
    /// Mean number of SHA1 queries in such a session (geometric).
    pub sha1_mean: f64,
    /// Probability that each user query is automatically re-sent later in
    /// the session to refresh results (rule 2 traffic).
    pub repeat_prob: f64,
    /// Mean number of automatic repeats per repeated query (geometric).
    pub repeat_mean: f64,
    /// Probability that a session opens with a sub-second burst re-sending
    /// searches issued before connecting (rule 4 traffic).
    pub burst_prob: f64,
    /// Burst length bounds (distinct pre-connect searches re-sent).
    pub burst_len: (u32, u32),
    /// Probability that the client re-sends its search list at a fixed
    /// interval for the whole session (rule 5 traffic).
    pub periodic_prob: f64,
    /// The fixed re-query interval in seconds (identical gaps — exactly
    /// what rule 5 detects).
    pub periodic_interval_secs: f64,
}

impl ClientProfile {
    /// A perfectly clean client (no automation) — useful in tests.
    pub fn clean(user_agent: &str) -> ClientProfile {
        ClientProfile {
            user_agent: user_agent.to_string(),
            sha1_session_prob: 0.0,
            sha1_mean: 0.0,
            repeat_prob: 0.0,
            repeat_mean: 0.0,
            burst_prob: 0.0,
            burst_len: (0, 0),
            periodic_prob: 0.0,
            periodic_interval_secs: 10.0,
        }
    }
}

/// The simulated client population: profiles plus per-region mix weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientPopulation {
    /// The catalogue of client implementations.
    pub profiles: Vec<ClientProfile>,
    /// Mix weights per region (rows: NA, EU, Asia, Other), same length as
    /// `profiles`, each row summing to 1.
    pub region_mix: [Vec<f64>; 4],
}

impl ClientPopulation {
    /// The default 2004-flavored population.
    ///
    /// Calibration targets (Table 2): rule 1 removes ≈24 % of raw hop-1
    /// queries, rule 2 ≈64 % of the remainder, rules 4+5 flag ≈53 % of the
    /// post-rule-3 queries; Figure 6(c): Asian sessions show a heavy
    /// unfiltered burst tail (≈4 % of sessions with >100 raw queries).
    pub fn paper_default() -> ClientPopulation {
        let profiles = vec![
            // The measurement client's own lineage: clean.
            ClientProfile::clean("Mutella/0.4.5"),
            ClientProfile {
                user_agent: "LimeWire/3.8.10".into(),
                sha1_session_prob: 0.90,
                sha1_mean: 9.0,
                repeat_prob: 0.95,
                repeat_mean: 4.8,
                burst_prob: 0.50,
                burst_len: (3, 10),
                periodic_prob: 0.0,
                periodic_interval_secs: 10.0,
            },
            ClientProfile {
                user_agent: "BearShare/4.6.2".into(),
                sha1_session_prob: 0.90,
                sha1_mean: 8.0,
                repeat_prob: 0.92,
                repeat_mean: 4.2,
                burst_prob: 0.55,
                burst_len: (3, 12),
                periodic_prob: 0.20,
                periodic_interval_secs: 10.0,
            },
            ClientProfile {
                user_agent: "Gnucleus/1.8.6".into(),
                sha1_session_prob: 0.55,
                sha1_mean: 3.5,
                repeat_prob: 0.85,
                repeat_mean: 3.0,
                burst_prob: 0.10,
                burst_len: (2, 4),
                periodic_prob: 0.50,
                periodic_interval_secs: 15.0,
            },
            ClientProfile {
                user_agent: "Shareaza/1.9.4".into(),
                sha1_session_prob: 0.80,
                sha1_mean: 5.0,
                repeat_prob: 0.93,
                repeat_mean: 4.4,
                burst_prob: 0.60,
                burst_len: (3, 12),
                periodic_prob: 0.15,
                periodic_interval_secs: 10.0,
            },
            // The aggressive re-query client, over-represented in Asia
            // (drives the Figure 6(c) >100-query tail).
            ClientProfile {
                user_agent: "XoloX/1.25".into(),
                sha1_session_prob: 0.60,
                sha1_mean: 4.0,
                repeat_prob: 0.78,
                repeat_mean: 2.6,
                burst_prob: 0.85,
                burst_len: (20, 160),
                periodic_prob: 0.45,
                periodic_interval_secs: 10.0,
            },
        ];
        // Mix: NA / EU lean LimeWire+BearShare; Asia leans XoloX.
        let region_mix = [
            vec![0.10, 0.40, 0.22, 0.08, 0.17, 0.03], // NA
            vec![0.12, 0.33, 0.18, 0.12, 0.22, 0.03], // EU
            vec![0.06, 0.22, 0.12, 0.08, 0.17, 0.35], // Asia
            vec![0.10, 0.40, 0.22, 0.08, 0.17, 0.03], // Other
        ];
        ClientPopulation {
            profiles,
            region_mix,
        }
    }

    /// Draw a client profile index for a peer in `region`.
    pub fn pick(&self, region: Region, rng: &mut StdRng) -> usize {
        let weights = &self.region_mix[region.index()];
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, w) in weights.iter().enumerate() {
            acc += w;
            if u < acc {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Profile by index.
    pub fn profile(&self, idx: usize) -> &ClientProfile {
        &self.profiles[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mixes_are_normalized() {
        let pop = ClientPopulation::paper_default();
        for (r, row) in pop.region_mix.iter().enumerate() {
            assert_eq!(row.len(), pop.profiles.len(), "row {r} length");
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn asia_prefers_bursty_client() {
        let pop = ClientPopulation::paper_default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut asia_xolox = 0;
        let mut na_xolox = 0;
        let xolox = pop
            .profiles
            .iter()
            .position(|p| p.user_agent.starts_with("XoloX"))
            .unwrap();
        for _ in 0..10_000 {
            if pop.pick(Region::Asia, &mut rng) == xolox {
                asia_xolox += 1;
            }
            if pop.pick(Region::NorthAmerica, &mut rng) == xolox {
                na_xolox += 1;
            }
        }
        assert!(
            asia_xolox > 5 * na_xolox,
            "asia {asia_xolox} vs na {na_xolox}"
        );
    }

    #[test]
    fn clean_profile_has_no_automation() {
        let c = ClientProfile::clean("Test/1.0");
        assert_eq!(c.repeat_prob, 0.0);
        assert_eq!(c.burst_prob, 0.0);
        assert_eq!(c.periodic_prob, 0.0);
        assert_eq!(c.sha1_session_prob, 0.0);
    }

    #[test]
    fn user_agents_are_distinct() {
        let pop = ClientPopulation::paper_default();
        let mut set = std::collections::HashSet::new();
        for p in &pop.profiles {
            assert!(set.insert(p.user_agent.clone()));
        }
    }
}
