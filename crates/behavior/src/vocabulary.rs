//! Query vocabulary with geographic classes and daily hot-set drift.
//!
//! §4.6 divides each day's queries into seven disjoint classes: one per
//! single region, one per region pair, and one issued from all three
//! regions; Table 3 gives the class cardinalities. Popularity within a
//! class follows a Zipf-like law per day (Figure 11), and the set of
//! popular queries drifts substantially from day to day (Figure 10).
//!
//! The generative model here:
//!
//! * each class owns a pool of unique query strings (several times larger
//!   than its daily active set);
//! * every item has a static base weight (its long-run popularity);
//! * each day, every item's score is its log base weight plus Gaussian
//!   noise (`drift_sigma`); the top `daily_size` items by score form the
//!   day's active set, ranked by score — this produces partial
//!   persistence of popular items with heavy churn, the Figure 10 shape;
//! * queries are drawn by sampling a rank from the class's Zipf-like law
//!   (two-piece for the NA∩EU class, Figure 11(c)) and mapping it through
//!   the day's ranking.
//!
//! Query strings are unique keyword *sets* across the whole vocabulary
//! (pairs of distinct words from a 256-word lexicon), so the
//! keyword-set identity of §3.2 cannot collide across classes.

use geoip::Region;
use gnutella::QueryId;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use stats::dist::{Discrete, TwoPieceZipf, Zipf};
use stats::rng::SeedSequence;

/// The seven disjoint geographic query classes of §4.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum QueryClass {
    /// Issued only by North American peers.
    NaOnly,
    /// Issued only by European peers.
    EuOnly,
    /// Issued only by Asian peers.
    AsOnly,
    /// Issued by both North American and European peers.
    NaEu,
    /// Issued by both North American and Asian peers.
    NaAs,
    /// Issued by both European and Asian peers.
    EuAs,
    /// Issued by peers from all three regions.
    All,
}

impl QueryClass {
    /// All seven classes in a fixed order.
    pub const ALL7: [QueryClass; 7] = [
        QueryClass::NaOnly,
        QueryClass::EuOnly,
        QueryClass::AsOnly,
        QueryClass::NaEu,
        QueryClass::NaAs,
        QueryClass::EuAs,
        QueryClass::All,
    ];

    /// Dense index.
    pub fn index(self) -> usize {
        match self {
            QueryClass::NaOnly => 0,
            QueryClass::EuOnly => 1,
            QueryClass::AsOnly => 2,
            QueryClass::NaEu => 3,
            QueryClass::NaAs => 4,
            QueryClass::EuAs => 5,
            QueryClass::All => 6,
        }
    }

    /// Which regions issue queries of this class.
    pub fn regions(self) -> &'static [Region] {
        use Region::*;
        match self {
            QueryClass::NaOnly => &[NorthAmerica],
            QueryClass::EuOnly => &[Europe],
            QueryClass::AsOnly => &[Asia],
            QueryClass::NaEu => &[NorthAmerica, Europe],
            QueryClass::NaAs => &[NorthAmerica, Asia],
            QueryClass::EuAs => &[Europe, Asia],
            QueryClass::All => &[NorthAmerica, Europe, Asia],
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            QueryClass::NaOnly => "NA-only",
            QueryClass::EuOnly => "EU-only",
            QueryClass::AsOnly => "AS-only",
            QueryClass::NaEu => "NA∩EU",
            QueryClass::NaAs => "NA∩AS",
            QueryClass::EuAs => "EU∩AS",
            QueryClass::All => "NA∩EU∩AS",
        }
    }
}

/// Per-class rank-popularity law.
#[derive(Debug, Clone)]
enum RankLaw {
    Zipf(Zipf),
    TwoPiece(TwoPieceZipf),
}

impl RankLaw {
    fn sample(&self, rng: &mut StdRng) -> u64 {
        match self {
            RankLaw::Zipf(z) => z.sample(rng),
            RankLaw::TwoPiece(z) => z.sample(rng),
        }
    }
}

/// Vocabulary construction parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VocabularyConfig {
    /// Daily active-set size per class (Table 3, 1-day column, made
    /// disjoint: NA-only 1931, EU-only 1875, AS-only 145, NA∩EU 54,
    /// NA∩AS 3, EU∩AS 3, triple 2).
    pub daily_sizes: [usize; 7],
    /// Pool size multiplier over the daily size (how much long-tail
    /// vocabulary exists to churn in).
    pub pool_multiplier: usize,
    /// Zipf exponents per class. Figure 11: NA-only 0.386, EU-only 0.223.
    pub alphas: [f64; 7],
    /// Two-piece parameters for the NA∩EU class (Figure 11(c)):
    /// (body α, tail α, break rank).
    pub na_eu_two_piece: (f64, f64, u64),
    /// Day-to-day drift noise (log-score σ). Larger ⇒ faster hot-set
    /// churn (Figure 10).
    pub drift_sigma: f64,
    /// Number of simulated days to precompute rankings for.
    pub n_days: usize,
    /// Probability that a query from each region falls in each class
    /// (§4.7: "for North American peers, a query is in the set of North
    /// American queries with probability 0.97, and with probability 0.03
    /// in the intersection set"). Rows: NA, EU, AS, Other; columns: the
    /// classes that region participates in, see [`Vocabulary::pick_class`].
    pub class_mix: ClassMix,
}

/// Per-region class-selection probabilities.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClassMix {
    /// NA: (NaOnly, NaEu, NaAs, All).
    pub na: (f64, f64, f64, f64),
    /// EU: (EuOnly, NaEu, EuAs, All).
    pub eu: (f64, f64, f64, f64),
    /// AS: (AsOnly, NaAs, EuAs, All).
    pub asia: (f64, f64, f64, f64),
}

impl Default for VocabularyConfig {
    fn default() -> Self {
        VocabularyConfig {
            daily_sizes: [1931, 1875, 145, 54, 3, 3, 2],
            pool_multiplier: 5,
            alphas: [0.386, 0.223, 0.30, 0.453, 0.30, 0.30, 0.30],
            na_eu_two_piece: (0.453, 4.67, 45),
            drift_sigma: 2.3,
            n_days: 40,
            class_mix: ClassMix {
                na: (0.970, 0.025, 0.003, 0.002),
                eu: (0.965, 0.030, 0.003, 0.002),
                asia: (0.930, 0.030, 0.030, 0.010),
            },
        }
    }
}

/// One class's pool and precomputed daily rankings.
#[derive(Debug, Clone)]
struct ClassPool {
    /// Pool item texts, interned once at build time.
    ids: Vec<QueryId>,
    /// `rankings[day][rank-1]` = pool index of the day's rank-`rank` item.
    rankings: Vec<Vec<u32>>,
    law: RankLaw,
    daily_size: usize,
}

/// The full query vocabulary.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    classes: Vec<ClassPool>,
    config: VocabularyConfig,
}

/// 16 × 16 syllable lexicon → 256 distinct keywords.
fn lexicon() -> Vec<String> {
    const A: [&str; 16] = [
        "dark", "blue", "fire", "moon", "star", "gold", "wild", "free", "lost", "last", "love",
        "rock", "rain", "sun", "night", "heart",
    ];
    const B: [&str; 16] = [
        "song", "road", "line", "side", "light", "dance", "dream", "rider", "town", "girl", "man",
        "wave", "time", "day", "fall", "fly",
    ];
    let mut out = Vec::with_capacity(256);
    for a in A {
        for b in B {
            out.push(format!("{a}{b}"));
        }
    }
    out
}

/// Map a global item index to a unique unordered word pair `(i < j)` from
/// a 256-word lexicon — C(256,2) = 32 640 unique keyword sets.
fn pair_for(global: usize) -> (usize, usize) {
    // Enumerate pairs (i, j) with i < j in row-major order.
    let mut g = global;
    for i in 0..256 {
        let row = 255 - i;
        if g < row {
            return (i, i + 1 + g);
        }
        g -= row;
    }
    panic!("vocabulary exceeds unique pair capacity (32 640 items)");
}

impl Vocabulary {
    /// Build the vocabulary: allocate pools, assign unique texts, and
    /// precompute per-day rankings.
    pub fn build(seed: u64, config: VocabularyConfig) -> Vocabulary {
        let words = lexicon();
        let seq = SeedSequence::new(seed).child("vocabulary");
        let mut classes = Vec::with_capacity(7);
        let mut global = 0usize;
        for class in QueryClass::ALL7 {
            let ci = class.index();
            let daily = config.daily_sizes[ci];
            let pool = (daily * config.pool_multiplier).max(daily + 1);
            let mut ids = Vec::with_capacity(pool);
            for _ in 0..pool {
                let (i, j) = pair_for(global);
                global += 1;
                ids.push(QueryId::intern(&format!("{} {}", words[i], words[j])));
            }
            // Static base weights: Zipf-ish by pool position.
            let base: Vec<f64> = (0..pool).map(|i| -((i + 1) as f64).ln()).collect();
            // Daily rankings.
            let mut rankings = Vec::with_capacity(config.n_days);
            for day in 0..config.n_days {
                let mut rng = seq.rng_indexed(class.label(), day as u64);
                let mut scored: Vec<(f64, u32)> = base
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| {
                        let z: f64 = gaussian(&mut rng);
                        (b + config.drift_sigma * z, i as u32)
                    })
                    .collect();
                scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
                rankings.push(scored.into_iter().take(daily).map(|(_, i)| i).collect());
            }
            let law = if class == QueryClass::NaEu {
                let (ab, at, brk) = config.na_eu_two_piece;
                RankLaw::TwoPiece(
                    TwoPieceZipf::new(ab, at, brk.min(daily as u64 - 1).max(1), daily as u64)
                        .expect("two-piece params valid"),
                )
            } else {
                RankLaw::Zipf(Zipf::new(config.alphas[ci], daily as u64).expect("zipf valid"))
            };
            classes.push(ClassPool {
                ids,
                rankings,
                law,
                daily_size: daily,
            });
        }
        Vocabulary { classes, config }
    }

    /// Build with defaults.
    pub fn paper_default(seed: u64) -> Vocabulary {
        Vocabulary::build(seed, VocabularyConfig::default())
    }

    /// The construction parameters.
    pub fn config(&self) -> &VocabularyConfig {
        &self.config
    }

    /// Daily active-set size of a class.
    pub fn daily_size(&self, class: QueryClass) -> usize {
        self.classes[class.index()].daily_size
    }

    /// The day's active set (rank order) as text references.
    pub fn day_set(&self, class: QueryClass, day: usize) -> Vec<&'static str> {
        let pool = &self.classes[class.index()];
        let day = day % pool.rankings.len();
        pool.rankings[day]
            .iter()
            .map(|&i| pool.ids[i as usize].resolve())
            .collect()
    }

    /// Pick the class for a query issued by a peer in `region`.
    pub fn pick_class(&self, region: Region, rng: &mut StdRng) -> QueryClass {
        let mix = &self.config.class_mix;
        let (own, pair_a, pair_b, all, classes): (f64, f64, f64, f64, [QueryClass; 4]) =
            match region {
                Region::NorthAmerica | Region::Other => (
                    mix.na.0,
                    mix.na.1,
                    mix.na.2,
                    mix.na.3,
                    [
                        QueryClass::NaOnly,
                        QueryClass::NaEu,
                        QueryClass::NaAs,
                        QueryClass::All,
                    ],
                ),
                Region::Europe => (
                    mix.eu.0,
                    mix.eu.1,
                    mix.eu.2,
                    mix.eu.3,
                    [
                        QueryClass::EuOnly,
                        QueryClass::NaEu,
                        QueryClass::EuAs,
                        QueryClass::All,
                    ],
                ),
                Region::Asia => (
                    mix.asia.0,
                    mix.asia.1,
                    mix.asia.2,
                    mix.asia.3,
                    [
                        QueryClass::AsOnly,
                        QueryClass::NaAs,
                        QueryClass::EuAs,
                        QueryClass::All,
                    ],
                ),
            };
        let u: f64 = rng.gen();
        if u < own {
            classes[0]
        } else if u < own + pair_a {
            classes[1]
        } else if u < own + pair_a + pair_b {
            classes[2]
        } else {
            let _ = all;
            classes[3]
        }
    }

    /// Draw a query for `region` on `day` (an interned id — no allocation).
    pub fn sample_query(&self, region: Region, day: usize, rng: &mut StdRng) -> QueryId {
        let class = self.pick_class(region, rng);
        self.sample_from_class(class, day, rng)
    }

    /// Draw a query from a specific class on `day`.
    pub fn sample_from_class(&self, class: QueryClass, day: usize, rng: &mut StdRng) -> QueryId {
        let pool = &self.classes[class.index()];
        let day = day % pool.rankings.len();
        let rank = pool.law.sample(rng) as usize; // 1-based
        let idx = pool.rankings[day][(rank - 1).min(pool.daily_size - 1)];
        pool.ids[idx as usize]
    }
}

/// One standard normal via Box–Muller (local helper; the stats crate's
/// distributions sample via quantiles, but here we only need raw normals).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn small_config() -> VocabularyConfig {
        VocabularyConfig {
            daily_sizes: [200, 180, 50, 30, 3, 3, 2],
            pool_multiplier: 5,
            n_days: 6,
            ..VocabularyConfig::default()
        }
    }

    #[test]
    fn texts_are_unique_keyword_sets_across_classes() {
        let v = Vocabulary::build(1, small_config());
        let mut seen = HashSet::new();
        for class in QueryClass::ALL7 {
            let pool = &v.classes[class.index()];
            for t in &pool.ids {
                assert!(seen.insert(t.canonical()), "duplicate keyword set: {t}");
            }
        }
    }

    #[test]
    fn day_sets_have_configured_sizes() {
        let v = Vocabulary::build(2, small_config());
        assert_eq!(v.day_set(QueryClass::NaOnly, 0).len(), 200);
        assert_eq!(v.day_set(QueryClass::All, 3).len(), 2);
        assert_eq!(v.daily_size(QueryClass::EuOnly), 180);
    }

    #[test]
    fn hot_set_drifts_but_persists_partially() {
        // Figure 10 qualitative check: consecutive-day top sets overlap a
        // little but churn a lot.
        let v = Vocabulary::build(3, small_config());
        let mut overlaps = Vec::new();
        for day in 0..5 {
            let top10: HashSet<&str> = v
                .day_set(QueryClass::NaOnly, day)
                .into_iter()
                .take(10)
                .collect();
            let top100: HashSet<&str> = v
                .day_set(QueryClass::NaOnly, day + 1)
                .into_iter()
                .take(100)
                .collect();
            overlaps.push(top10.intersection(&top100).count());
        }
        let mean = overlaps.iter().sum::<usize>() as f64 / overlaps.len() as f64;
        assert!(mean < 8.0, "hot set too sticky: mean overlap {mean}");
        assert!(
            overlaps.iter().any(|&o| o > 0),
            "hot set should not churn completely"
        );
    }

    #[test]
    fn class_mix_probabilities() {
        let v = Vocabulary::build(4, small_config());
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 7];
        let n = 50_000;
        for _ in 0..n {
            counts[v.pick_class(Region::NorthAmerica, &mut rng).index()] += 1;
        }
        let frac_own = counts[QueryClass::NaOnly.index()] as f64 / n as f64;
        assert!(
            (frac_own - 0.97).abs() < 0.01,
            "NA-only fraction {frac_own}"
        );
        // NA peers never draw from EU-only / AS-only / EU∩AS.
        assert_eq!(counts[QueryClass::EuOnly.index()], 0);
        assert_eq!(counts[QueryClass::AsOnly.index()], 0);
        assert_eq!(counts[QueryClass::EuAs.index()], 0);
    }

    #[test]
    fn sampling_respects_daily_set_and_zipf_head() {
        let v = Vocabulary::build(5, small_config());
        let mut rng = StdRng::seed_from_u64(7);
        let day_set: HashSet<&str> = v.day_set(QueryClass::NaOnly, 2).into_iter().collect();
        let mut head_hits = 0;
        let top1 = v.day_set(QueryClass::NaOnly, 2)[0];
        for _ in 0..5_000 {
            let q = v
                .sample_from_class(QueryClass::NaOnly, 2, &mut rng)
                .resolve();
            assert!(day_set.contains(q), "query {q} outside day set");
            if q == top1 {
                head_hits += 1;
            }
        }
        // Rank 1 under Zipf(0.386, 200) has pmf ≈ 0.024; uniform would be
        // 0.005. The head must be visibly hotter than uniform.
        assert!(head_hits > 50, "rank-1 hits {head_hits}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Vocabulary::build(8, small_config());
        let b = Vocabulary::build(8, small_config());
        assert_eq!(
            a.day_set(QueryClass::EuOnly, 1),
            b.day_set(QueryClass::EuOnly, 1)
        );
        let c = Vocabulary::build(9, small_config());
        assert_ne!(
            a.day_set(QueryClass::EuOnly, 1),
            c.day_set(QueryClass::EuOnly, 1)
        );
    }

    #[test]
    fn pair_enumeration_is_injective() {
        let mut seen = HashSet::new();
        for g in 0..5_000 {
            let (i, j) = pair_for(g);
            assert!(i < j && j < 256);
            assert!(seen.insert((i, j)));
        }
    }

    #[test]
    fn day_wraps_beyond_horizon() {
        let v = Vocabulary::build(10, small_config());
        assert_eq!(
            v.day_set(QueryClass::NaOnly, 0),
            v.day_set(QueryClass::NaOnly, 6)
        );
    }
}
