//! Shared per-session traffic generation.
//!
//! Everything a client session *sends* — planned queries, keepalive
//! PINGs, relayed ultrapeer traffic, answers to probes and forwarded
//! queries, the closing BYE — is drawn here, from the session's own RNG
//! stream, in one canonical order. Both execution fidelities consume
//! this module:
//!
//! * **full** ([`crate::peer::ClientPeer`]) turns each draw into a real
//!   [`gnutella::message::Message`] and sends it through `simnet`;
//! * **hybrid** ([`crate::hybrid`]) turns the same draw into a trace
//!   record plus an analytic wire length, skipping message construction
//!   entirely.
//!
//! Because the draw functions are shared and the session RNG is private
//! to the session, the two fidelities produce bit-identical observable
//! traffic — the property the golden equivalence test enforces.
//!
//! [`SessionEmitter`] merges a session's time-driven emissions (planned
//! queries, keepalives, relayed traffic, session end) into one ordered
//! stream that is pulled lazily, one item at a time: the full-fidelity
//! peer keeps a single outstanding timer per session instead of
//! pre-arming every planned query, which cuts steady-state event-queue
//! pressure to O(live sessions).

use crate::files::SharedFilesModel;
use crate::peer::RelayRates;
use crate::session::SessionPlan;
use crate::vocabulary::Vocabulary;
use geoip::{AddressAllocator, DiurnalModel};
use gnutella::symbols::QueryId;
use gnutella::Guid;
use rand::rngs::StdRng;
use rand::Rng;
use simnet::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// Fixed name of the single result in an answer to a forwarded query.
pub const ANSWER_FILE_NAME: &str = "match.mp3";

/// Draw an exponential delay with the given mean.
pub fn exp_delay(rng: &mut StdRng, mean_secs: f64) -> SimDuration {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    SimDuration::from_secs_f64(-mean_secs * u.ln())
}

/// Received hop counts of relayed traffic: skewed toward the middle of
/// the 7-hop flood radius. Returns `(hops, ttl)`.
pub fn relay_header(rng: &mut StdRng) -> (u8, u8) {
    let hops = *[2u8, 2, 3, 3, 3, 4, 4, 5, 5, 6]
        .get(rng.gen_range(0..10))
        .unwrap();
    (
        hops,
        gnutella::message::DEFAULT_TTL.saturating_sub(hops).max(1),
    )
}

/// A relayed QUERY, fully drawn.
pub struct RelayQueryDraw {
    /// Interned query text.
    pub text: QueryId,
    /// Received hop count.
    pub hops: u8,
    /// Remaining TTL.
    pub ttl: u8,
    /// Message GUID.
    pub guid: Guid,
}

/// Draw a relayed QUERY (region → text → header → GUID).
pub fn draw_relay_query(
    vocab: &Vocabulary,
    diurnal: &DiurnalModel,
    now: SimTime,
    rng: &mut StdRng,
) -> RelayQueryDraw {
    let hour = now.hour_of_day();
    let day = now.day() as usize;
    let region = diurnal.sample_region(hour, rng);
    let text = vocab.sample_query(region, day, rng);
    let (hops, ttl) = relay_header(rng);
    RelayQueryDraw {
        text,
        hops,
        ttl,
        guid: Guid::random(rng),
    }
}

/// A relayed PONG, fully drawn.
pub struct RelayPongDraw {
    /// Advertised remote address.
    pub addr: Ipv4Addr,
    /// Advertised shared-file count.
    pub files: u32,
    /// Advertised shared kilobytes.
    pub kb: u32,
    /// Received hop count.
    pub hops: u8,
    /// Remaining TTL.
    pub ttl: u8,
    /// Message GUID.
    pub guid: Guid,
}

/// Draw a relayed PONG (region → addr → files → kb → header → GUID).
pub fn draw_relay_pong(
    diurnal: &DiurnalModel,
    alloc: &AddressAllocator,
    files: &SharedFilesModel,
    now: SimTime,
    rng: &mut StdRng,
) -> RelayPongDraw {
    let hour = now.hour_of_day();
    let region = diurnal.sample_region(hour, rng);
    let addr = alloc.sample(region, rng);
    let f = files.sample(rng);
    let kb = files.kb_for(f, rng);
    let (hops, ttl) = relay_header(rng);
    RelayPongDraw {
        addr,
        files: f,
        kb,
        hops,
        ttl,
        guid: Guid::random(rng),
    }
}

/// One drawn result record of a relayed QUERYHIT. The file name on the
/// wire is `file{num:04}.mp3` — always [`RELAY_HIT_NAME_LEN`] bytes.
pub struct RelayHitResultDraw {
    /// File size in bytes.
    pub size: u32,
    /// Four-digit number embedded in the file name.
    pub name_num: u32,
}

/// Byte length of every relayed-hit file name (`fileNNNN.mp3`).
pub const RELAY_HIT_NAME_LEN: usize = 12;

/// A relayed QUERYHIT, fully drawn.
pub struct RelayHitDraw {
    /// Responder address.
    pub addr: Ipv4Addr,
    /// Received hop count.
    pub hops: u8,
    /// Remaining TTL.
    pub ttl: u8,
    /// Result records (1..=4).
    pub results: Vec<RelayHitResultDraw>,
    /// Message GUID.
    pub guid: Guid,
    /// Responder advertised speed.
    pub speed: u32,
    /// Responder servent GUID.
    pub servent: Guid,
}

/// Draw a relayed QUERYHIT
/// (region → addr → header → n → results → GUID → speed → servent).
pub fn draw_relay_hit(
    diurnal: &DiurnalModel,
    alloc: &AddressAllocator,
    now: SimTime,
    rng: &mut StdRng,
) -> RelayHitDraw {
    let hour = now.hour_of_day();
    let region = diurnal.sample_region(hour, rng);
    let addr = alloc.sample(region, rng);
    let (hops, ttl) = relay_header(rng);
    let n = rng.gen_range(1..=4);
    let results = (0..n)
        .map(|_| RelayHitResultDraw {
            size: rng.gen_range(500_000..8_000_000),
            name_num: rng.gen_range(0..9_999),
        })
        .collect();
    RelayHitDraw {
        addr,
        hops,
        ttl,
        results,
        guid: Guid::random(rng),
        speed: rng.gen_range(28..1_000),
        servent: Guid::random(rng),
    }
}

/// An answer to a query forwarded by the measurement peer, fully drawn.
/// The hit reuses the incoming GUID (drawn by the querying peer), so only
/// the responder-side fields are here.
pub struct QueryAnswerDraw {
    /// Responder advertised speed.
    pub speed: u32,
    /// Size of the single matching file.
    pub size: u32,
    /// Responder servent GUID.
    pub servent: Guid,
}

/// Decide whether a session answers a forwarded query, and draw the
/// answer (p → speed → size → servent). Sessions sharing no files never
/// answer — and consume no randomness.
pub fn draw_query_answer(shared_files: u32, rng: &mut StdRng) -> Option<QueryAnswerDraw> {
    if shared_files == 0 {
        return None;
    }
    // A modest hit probability; hits reuse the incoming GUID so the
    // measurement peer's reverse routing is exercised.
    if rng.gen::<f64>() > 0.05 {
        return None;
    }
    Some(QueryAnswerDraw {
        speed: rng.gen_range(28..1_000),
        size: rng.gen_range(500_000..8_000_000),
        servent: Guid::random(rng),
    })
}

/// What a session emits next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmissionKind {
    /// The planned query at this index.
    Planned(usize),
    /// A keepalive PING.
    Keepalive,
    /// A relayed QUERY from the notional subtree (ultrapeers only).
    RelayQuery,
    /// A relayed PONG.
    RelayPong,
    /// A relayed QUERYHIT.
    RelayHit,
    /// Session end (optionally BYE + disconnect, or a silent vanish).
    End,
}

/// Merged, lazily-pulled stream of a session's time-driven emissions.
///
/// [`SessionEmitter::next`] returns the send instant and kind of the
/// next emission and advances the winning sub-stream — drawing the next
/// exponential gap for relay streams *at emission time*, which is the
/// canonical draw point both fidelities share. After [`EmissionKind::End`]
/// is returned the emitter is exhausted.
#[derive(Debug, Clone)]
pub struct SessionEmitter {
    next_planned: usize,
    keepalive_at: SimTime,
    keepalive: SimDuration,
    relay_query_at: SimTime,
    relay_pong_at: SimTime,
    relay_hit_at: SimTime,
    start: SimTime,
    end_at: SimTime,
    ultrapeer: bool,
    done: bool,
}

impl SessionEmitter {
    /// Start a session's emission stream at `now` (the accept instant).
    /// For ultrapeers this draws the three initial relay gaps, in
    /// query → pong → hit order.
    pub fn start(
        plan: &SessionPlan,
        keepalive: SimDuration,
        relay: &RelayRates,
        now: SimTime,
        rng: &mut StdRng,
    ) -> SessionEmitter {
        let far = now + SimDuration::from_hours(24 * 365);
        let (rq, rp, rh) = if plan.ultrapeer {
            let q = now + exp_delay(rng, relay.query_mean_secs);
            let p = now + exp_delay(rng, relay.pong_mean_secs);
            let h = now + exp_delay(rng, relay.hit_mean_secs);
            (q, p, h)
        } else {
            (far, far, far)
        };
        SessionEmitter {
            next_planned: 0,
            keepalive_at: now + keepalive,
            keepalive,
            relay_query_at: rq,
            relay_pong_at: rp,
            relay_hit_at: rh,
            start: now,
            end_at: now + plan.duration,
            ultrapeer: plan.ultrapeer,
            done: false,
        }
    }

    /// The next emission, or `None` once [`EmissionKind::End`] has been
    /// delivered. Ties at the same instant resolve in the fixed order
    /// planned < keepalive < relay query < relay pong < relay hit < end.
    pub fn next(
        &mut self,
        plan: &SessionPlan,
        relay: &RelayRates,
        rng: &mut StdRng,
    ) -> Option<(SimTime, EmissionKind)> {
        if self.done {
            return None;
        }
        let mut at = self.end_at;
        let mut kind = EmissionKind::End;
        if self.ultrapeer {
            if self.relay_hit_at <= at {
                at = self.relay_hit_at;
                kind = EmissionKind::RelayHit;
            }
            if self.relay_pong_at <= at {
                at = self.relay_pong_at;
                kind = EmissionKind::RelayPong;
            }
            if self.relay_query_at <= at {
                at = self.relay_query_at;
                kind = EmissionKind::RelayQuery;
            }
        }
        if self.keepalive_at <= at {
            at = self.keepalive_at;
            kind = EmissionKind::Keepalive;
        }
        if let Some(q) = plan.queries.get(self.next_planned) {
            let q_at = self.start + q.offset;
            if q_at <= at {
                at = q_at;
                kind = EmissionKind::Planned(self.next_planned);
            }
        }
        match kind {
            EmissionKind::Planned(_) => self.next_planned += 1,
            EmissionKind::Keepalive => self.keepalive_at = at + self.keepalive,
            EmissionKind::RelayQuery => {
                self.relay_query_at = at + exp_delay(rng, relay.query_mean_secs);
            }
            EmissionKind::RelayPong => {
                self.relay_pong_at = at + exp_delay(rng, relay.pong_mean_secs);
            }
            EmissionKind::RelayHit => {
                self.relay_hit_at = at + exp_delay(rng, relay.hit_mean_secs);
            }
            EmissionKind::End => self.done = true,
        }
        Some((at, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionPlanner;
    use crate::vocabulary::VocabularyConfig;
    use geoip::Region;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn plan_for(seed: u64) -> (SessionPlan, StdRng) {
        let vocab = Arc::new(Vocabulary::build(1, VocabularyConfig::default()));
        let planner = SessionPlanner::paper_default(vocab);
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = planner.plan(0, 12, Region::Europe, &mut rng);
        (plan, rng)
    }

    #[test]
    fn emitter_is_monotone_and_ends_once() {
        for seed in 0..50 {
            let (plan, mut rng) = plan_for(seed);
            let relay = RelayRates::default();
            let now = SimTime::from_secs(100);
            let mut em =
                SessionEmitter::start(&plan, SimDuration::from_secs(20), &relay, now, &mut rng);
            let mut last = now;
            let mut planned_seen = 0;
            loop {
                let (at, kind) = em
                    .next(&plan, &relay, &mut rng)
                    .expect("stream ends with End");
                assert!(at >= last, "emission time went backwards");
                last = at;
                match kind {
                    EmissionKind::Planned(i) => {
                        assert_eq!(i, planned_seen, "planned queries in order");
                        planned_seen += 1;
                    }
                    EmissionKind::End => break,
                    _ => {}
                }
            }
            assert!(em.next(&plan, &relay, &mut rng).is_none());
            // Every planned query at offset ≤ duration is emitted.
            let due = plan
                .queries
                .iter()
                .filter(|q| q.offset <= plan.duration)
                .count();
            assert_eq!(planned_seen, due);
        }
    }

    #[test]
    fn non_ultrapeer_draws_no_relay_gaps() {
        // Two identically seeded RNGs: one drives an ultrapeer emitter,
        // one a leaf emitter. The leaf must not consume relay draws.
        let (mut plan, _) = plan_for(3);
        plan.ultrapeer = false;
        let relay = RelayRates::default();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let _ = SessionEmitter::start(
            &plan,
            SimDuration::from_secs(20),
            &relay,
            SimTime::ZERO,
            &mut a,
        );
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
