//! Property tests for the GeoIP substrate.

use geoip::{AddressAllocator, DiurnalModel, GeoDb, Region};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn allocation_round_trips_for_any_seed(seed in any::<u64>(), region_idx in 0usize..4) {
        let db = GeoDb::synthetic();
        let alloc = AddressAllocator::new(&db);
        let region = Region::ALL[region_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            let ip = alloc.sample(region, &mut rng);
            prop_assert_eq!(db.lookup(ip), region);
            // Host byte stays clear of network/broadcast values.
            prop_assert!(ip.octets()[3] != 0 && ip.octets()[3] != 255);
        }
    }

    #[test]
    fn lookups_are_total(a in any::<u8>(), b in any::<u8>(), c in any::<u8>(), d in any::<u8>()) {
        // Every address resolves to exactly one of the four classes.
        let db = GeoDb::synthetic();
        let region = db.lookup(std::net::Ipv4Addr::new(a, b, c, d));
        prop_assert!(Region::ALL.contains(&region));
    }

    #[test]
    fn diurnal_fractions_form_a_distribution(hour in 0u32..48) {
        let m = DiurnalModel::paper_default();
        let f = m.fractions(hour);
        let sum: f64 = f.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-12);
        for v in f {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // Peak classification is total and boolean-consistent across wrap.
        for r in Region::ALL {
            prop_assert_eq!(m.is_peak(r, hour), m.is_peak(r, hour % 24));
        }
    }

    #[test]
    fn region_sampling_matches_support(hour in 0u32..24, seed in any::<u64>()) {
        let m = DiurnalModel::paper_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let r = m.sample_region(hour, &mut rng);
        prop_assert!(m.fraction(r, hour) > 0.0, "sampled a zero-probability region");
    }
}
