//! Diurnal region-mix model (paper Figure 1 and §4.2).
//!
//! The model is a 24-entry per-region table of connected-peer fractions,
//! hand-anchored to the paper's Figure 1 narrative:
//!
//! * North America: ~80 % of peers, dipping to ~60 % while North America
//!   sleeps (22:00–06:00 NA-local = 05:00–13:00 at the measurement node);
//! * Europe: close to 20 % from noon to midnight Dortmund time, ~6 % around
//!   06:00;
//! * Asia: up to ~13 % during Asian afternoon/evening (≈07:00–15:00 at the
//!   measurement node), ~4 % otherwise;
//! * Other/unknown: the 5–10 % residual.
//!
//! All hours in this module are **measurement-local** (Dortmund, CET),
//! matching the x-axes of the paper's figures.

use crate::region::Region;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Fractions of connected peers by measurement-local hour.
/// Columns: NA, EU, Asia (Other is the residual to 1.0).
const FRACTIONS: [[f64; 3]; 24] = [
    [0.78, 0.130, 0.045], // 00
    [0.79, 0.120, 0.040], // 01
    [0.80, 0.100, 0.040], // 02
    [0.81, 0.075, 0.045], // 03
    [0.81, 0.065, 0.050], // 04
    [0.80, 0.060, 0.060], // 05
    [0.78, 0.060, 0.070], // 06
    [0.75, 0.070, 0.090], // 07
    [0.72, 0.080, 0.100], // 08
    [0.69, 0.090, 0.110], // 09
    [0.66, 0.110, 0.120], // 10
    [0.63, 0.140, 0.125], // 11
    [0.61, 0.160, 0.130], // 12
    [0.60, 0.170, 0.130], // 13
    [0.61, 0.180, 0.120], // 14
    [0.63, 0.190, 0.100], // 15
    [0.65, 0.190, 0.085], // 16
    [0.67, 0.190, 0.070], // 17
    [0.69, 0.190, 0.060], // 18
    [0.70, 0.190, 0.050], // 19
    [0.71, 0.180, 0.045], // 20
    [0.72, 0.170, 0.040], // 21
    [0.74, 0.160, 0.040], // 22
    [0.76, 0.145, 0.040], // 23
];

/// One of the paper's §4.2 "key periods" of the day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyPeriod {
    /// Measurement-local start hour (the period spans one hour).
    pub start_hour: u32,
    /// The paper's description of the period.
    pub description: &'static str,
}

/// The four key periods identified in §4.2 / Figure 3.
pub const KEY_PERIODS: [KeyPeriod; 4] = [
    KeyPeriod {
        start_hour: 3,
        description: "peak in North America, sink for Europe",
    },
    KeyPeriod {
        start_hour: 11,
        description: "sink for North America, peak for Europe",
    },
    KeyPeriod {
        start_hour: 13,
        description: "sink for North America, peak for Europe, peak for Asia",
    },
    KeyPeriod {
        start_hour: 19,
        description: "joint peak for North America and Europe",
    },
];

/// The diurnal region-mix model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DiurnalModel {
    _priv: (),
}

impl DiurnalModel {
    /// The paper-anchored default model.
    pub fn paper_default() -> Self {
        DiurnalModel { _priv: () }
    }

    /// Fractions `[NA, EU, Asia, Other]` of connected peers at
    /// measurement-local `hour` (0–23).
    pub fn fractions(&self, hour: u32) -> [f64; 4] {
        let row = FRACTIONS[(hour % 24) as usize];
        let other = 1.0 - row[0] - row[1] - row[2];
        [row[0], row[1], row[2], other]
    }

    /// Fraction of connected peers from `region` at `hour`.
    pub fn fraction(&self, region: Region, hour: u32) -> f64 {
        self.fractions(hour)[region.index()]
    }

    /// Mean fraction of `region` over the day.
    pub fn mean_fraction(&self, region: Region) -> f64 {
        (0..24).map(|h| self.fraction(region, h)).sum::<f64>() / 24.0
    }

    /// Draw the region of a newly arriving peer at `hour`.
    pub fn sample_region<R: Rng + ?Sized>(&self, hour: u32, rng: &mut R) -> Region {
        let f = self.fractions(hour);
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for r in Region::ALL {
            acc += f[r.index()];
            if u < acc {
                return r;
            }
        }
        Region::Other
    }

    /// Whether `hour` is a peak-load hour for `region`, following the
    /// §4.2 identification (load = queries received, Figure 3):
    ///
    /// * North America — evening/night at the measurement node
    ///   (19:00–04:00), with 03:00–04:00 the canonical peak period and
    ///   11:00–14:00 the sink;
    /// * Europe — noon to midnight, with 03:00–04:00 the canonical sink
    ///   (Figure 8(c): all key periods *except* 03:00–04:00 are peak);
    /// * Asia — Asian afternoon/evening, 07:00–15:00 at the measurement
    ///   node (13:00–14:00 the canonical peak);
    /// * Other — treated like North America (dominated by the Americas).
    pub fn is_peak(&self, region: Region, hour: u32) -> bool {
        let h = hour % 24;
        match region {
            Region::NorthAmerica | Region::Other => h >= 19 || h <= 4,
            Region::Europe => (11..=23).contains(&h),
            Region::Asia => (7..=15).contains(&h),
        }
    }

    /// Relative session-arrival weight for `region` at `hour`. Arrival
    /// rates are proportional to the connected-peer fractions (session
    /// durations are short relative to an hour for the vast majority of
    /// peers, so the connected mix tracks the arrival mix).
    pub fn arrival_weight(&self, region: Region, hour: u32) -> f64 {
        self.fraction(region, hour)
    }

    /// The key period starting at `hour`, if any.
    pub fn key_period(&self, hour: u32) -> Option<KeyPeriod> {
        KEY_PERIODS
            .iter()
            .copied()
            .find(|p| p.start_hour == hour % 24)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fractions_sum_to_one_and_residual_is_sane() {
        let m = DiurnalModel::paper_default();
        for h in 0..24 {
            let f = m.fractions(h);
            let sum: f64 = f.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "hour {h}: sum {sum}");
            // "Other" stays in the paper's 5–10 % band (±2 %).
            assert!(
                (0.03..=0.12).contains(&f[3]),
                "hour {h}: other fraction {}",
                f[3]
            );
        }
    }

    #[test]
    fn matches_paper_anchor_mixes() {
        // §4.1: interesting mixes — 75/15/5 at 00:00, 80/5/5 at 03:00,
        // 60/20/15 at 12:00 (NA/EU/Asia, in percent).
        let m = DiurnalModel::paper_default();
        let f0 = m.fractions(0);
        assert!((f0[0] - 0.75).abs() < 0.05);
        assert!((f0[1] - 0.15).abs() < 0.04);
        let f3 = m.fractions(3);
        assert!((f3[0] - 0.80).abs() < 0.03);
        assert!((f3[1] - 0.05).abs() < 0.04);
        let f12 = m.fractions(12);
        assert!((f12[0] - 0.60).abs() < 0.03);
        assert!((f12[1] - 0.20).abs() < 0.05);
        assert!((f12[2] - 0.15).abs() < 0.03);
    }

    #[test]
    fn na_dips_during_na_night() {
        let m = DiurnalModel::paper_default();
        // NA fraction minimum around 13:00 CET (≈06:00 NA-local).
        let min_hour = (0..24)
            .min_by(|&a, &b| {
                m.fraction(Region::NorthAmerica, a)
                    .partial_cmp(&m.fraction(Region::NorthAmerica, b))
                    .unwrap()
            })
            .unwrap();
        assert!((11..=14).contains(&min_hour), "NA min at hour {min_hour}");
        // And maximum in the CET early morning.
        let max_hour = (0..24)
            .max_by(|&a, &b| {
                m.fraction(Region::NorthAmerica, a)
                    .partial_cmp(&m.fraction(Region::NorthAmerica, b))
                    .unwrap()
            })
            .unwrap();
        assert!((2..=5).contains(&max_hour), "NA max at hour {max_hour}");
    }

    #[test]
    fn peak_classification_matches_key_periods() {
        let m = DiurnalModel::paper_default();
        // 03:00 — peak NA, sink EU.
        assert!(m.is_peak(Region::NorthAmerica, 3));
        assert!(!m.is_peak(Region::Europe, 3));
        // 11:00 — sink NA, peak EU.
        assert!(!m.is_peak(Region::NorthAmerica, 11));
        assert!(m.is_peak(Region::Europe, 11));
        // 13:00 — peak EU and Asia, sink NA.
        assert!(m.is_peak(Region::Europe, 13));
        assert!(m.is_peak(Region::Asia, 13));
        assert!(!m.is_peak(Region::NorthAmerica, 13));
        // 19:00 — joint peak NA and EU.
        assert!(m.is_peak(Region::NorthAmerica, 19));
        assert!(m.is_peak(Region::Europe, 19));
    }

    #[test]
    fn sampling_matches_fractions() {
        let m = DiurnalModel::paper_default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        let mut counts = [0usize; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[m.sample_region(12, &mut rng).index()] += 1;
        }
        let f = m.fractions(12);
        for r in Region::ALL {
            let emp = counts[r.index()] as f64 / n as f64;
            assert!(
                (emp - f[r.index()]).abs() < 0.01,
                "{r}: sampled {emp}, expected {}",
                f[r.index()]
            );
        }
    }

    #[test]
    fn key_period_lookup() {
        let m = DiurnalModel::paper_default();
        assert!(m.key_period(3).is_some());
        assert!(m.key_period(19).is_some());
        assert!(m.key_period(7).is_none());
        assert_eq!(m.key_period(27).unwrap().start_hour, 3); // wraps
        assert_eq!(KEY_PERIODS.len(), 4);
    }

    #[test]
    fn hour_wraps() {
        let m = DiurnalModel::paper_default();
        assert_eq!(m.fractions(0), m.fractions(24));
        assert_eq!(m.fractions(5), m.fractions(29));
    }
}
