//! Synthetic GeoIP substrate.
//!
//! The paper resolves peer IP addresses to geographic regions with the
//! MaxMind GeoIP database and characterizes three regions — North America,
//! Europe, and Asia — plus a residual "other/unknown" class (§3.2, §4.1).
//!
//! We do not ship MaxMind data; instead this crate provides:
//!
//! * [`Region`] — the four-way region classification the paper uses;
//! * [`GeoDb`] — a longest-prefix-match IPv4 → region database with a
//!   deterministic synthetic allocation ([`GeoDb::synthetic`]) loosely
//!   modeled on real 2004-era registry allocations (ARIN/RIPE/APNIC
//!   blocks), plus an [`AddressAllocator`] that draws region-consistent
//!   addresses for simulated peers;
//! * [`DiurnalModel`] — time-of-day population mixes and per-region
//!   activity rates anchored to the paper's Figure 1 and §4.2 key periods.
//!
//! Because the synthetic behavior model allocates addresses through the
//! same database the analysis pipeline uses for lookups, region resolution
//! is exact — mirroring the paper's assumption that GeoIP resolution errors
//! are negligible at continent granularity.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod db;
pub mod diurnal;
pub mod region;

pub use db::{AddressAllocator, GeoDb};
pub use diurnal::{DiurnalModel, KeyPeriod, KEY_PERIODS};
pub use region::Region;
