//! IPv4 → region database with longest-prefix-match lookup.
//!
//! The synthetic allocation mirrors coarse 2004-era registry geography:
//! classic ARIN space maps to North America, RIPE blocks to Europe, APNIC
//! blocks to Asia, and a few LACNIC/AfriNIC blocks to `Other`. The mapping
//! is *synthetic* — the point is a consistent, deterministic address space
//! that the behavior model can allocate from and the analysis pipeline can
//! resolve, exactly as the paper used MaxMind on real addresses.

use crate::region::Region;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One CIDR prefix entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixEntry {
    /// Network base address (host-order u32).
    pub base: u32,
    /// Prefix length in bits (0–32).
    pub len: u8,
    /// Region this prefix resolves to.
    pub region: Region,
}

impl PrefixEntry {
    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    fn contains(&self, addr: u32) -> bool {
        (addr & Self::mask(self.len)) == (self.base & Self::mask(self.len))
    }
}

/// Longest-prefix-match IPv4 geolocation database.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct GeoDb {
    entries: Vec<PrefixEntry>,
}

impl GeoDb {
    /// Empty database (all lookups resolve to [`Region::Other`]).
    pub fn new() -> Self {
        GeoDb::default()
    }

    /// Add a prefix; later longer prefixes take precedence over shorter.
    pub fn add_prefix(&mut self, base: Ipv4Addr, len: u8, region: Region) {
        assert!(len <= 32, "prefix length out of range");
        self.entries.push(PrefixEntry {
            base: u32::from(base),
            len,
            region,
        });
        // Keep sorted by descending prefix length so the first match is the
        // longest match.
        self.entries.sort_by_key(|e| std::cmp::Reverse(e.len));
    }

    /// Number of prefixes installed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no prefixes are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolve an address to a region; unresolvable ⇒ [`Region::Other`]
    /// (the paper folds "unknown origin" into the same residual class).
    pub fn lookup(&self, addr: Ipv4Addr) -> Region {
        let a = u32::from(addr);
        self.entries
            .iter()
            .find(|e| e.contains(a))
            .map(|e| e.region)
            .unwrap_or(Region::Other)
    }

    /// The deterministic synthetic database used throughout the
    /// reproduction. /8 blocks, loosely patterned on 2004 registry space.
    pub fn synthetic() -> Self {
        let mut db = GeoDb::new();
        let na8: &[u8] = &[
            12, 24, 63, 64, 65, 66, 67, 68, 69, 70, 71, 72, 73, 74, 75, 76, 96, 204, 205, 206, 207,
            208, 209, 216,
        ];
        let eu8: &[u8] = &[
            62, 80, 81, 82, 83, 84, 85, 86, 87, 88, 89, 90, 91, 193, 194, 195, 212, 213, 217,
        ];
        let as8: &[u8] = &[
            58, 59, 60, 61, 124, 125, 202, 203, 210, 211, 218, 219, 220, 221, 222,
        ];
        let ot8: &[u8] = &[41, 154, 196, 200, 201];
        for &b in na8 {
            db.add_prefix(Ipv4Addr::new(b, 0, 0, 0), 8, Region::NorthAmerica);
        }
        for &b in eu8 {
            db.add_prefix(Ipv4Addr::new(b, 0, 0, 0), 8, Region::Europe);
        }
        for &b in as8 {
            db.add_prefix(Ipv4Addr::new(b, 0, 0, 0), 8, Region::Asia);
        }
        for &b in ot8 {
            db.add_prefix(Ipv4Addr::new(b, 0, 0, 0), 8, Region::Other);
        }
        db
    }

    /// First-octet blocks allocated to `region` (used by the allocator).
    fn blocks_for(&self, region: Region) -> Vec<u8> {
        let mut out: Vec<u8> = self
            .entries
            .iter()
            .filter(|e| e.region == region && e.len == 8)
            .map(|e| (e.base >> 24) as u8)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Draws fresh, region-consistent peer addresses from a [`GeoDb`].
///
/// Addresses are drawn uniformly within the region's /8 blocks; collisions
/// across draws are possible but vanishingly rare relative to the paper's
/// 4.3 M connections over a /8-sized space, and harmless: the trace layer
/// keys sessions on (address, connection epoch).
#[derive(Debug, Clone)]
pub struct AddressAllocator {
    blocks: [Vec<u8>; 4],
}

impl AddressAllocator {
    /// Build an allocator over the database's /8 blocks.
    ///
    /// Panics if any characterized region has no address block — a
    /// misconfigured database would silently skew every region-conditioned
    /// measure.
    pub fn new(db: &GeoDb) -> Self {
        let blocks = [
            db.blocks_for(Region::NorthAmerica),
            db.blocks_for(Region::Europe),
            db.blocks_for(Region::Asia),
            db.blocks_for(Region::Other),
        ];
        for r in Region::ALL {
            assert!(
                !blocks[r.index()].is_empty(),
                "no /8 blocks allocated for {r}"
            );
        }
        AddressAllocator { blocks }
    }

    /// Draw an address in `region`.
    pub fn sample<R: Rng + ?Sized>(&self, region: Region, rng: &mut R) -> Ipv4Addr {
        let blocks = &self.blocks[region.index()];
        let b = blocks[rng.gen_range(0..blocks.len())];
        // Avoid .0 and .255 host bytes for realism.
        Ipv4Addr::new(
            b,
            rng.gen_range(0..=255),
            rng.gen_range(0..=255),
            rng.gen_range(1..=254),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn longest_prefix_wins() {
        let mut db = GeoDb::new();
        db.add_prefix(Ipv4Addr::new(10, 0, 0, 0), 8, Region::NorthAmerica);
        db.add_prefix(Ipv4Addr::new(10, 1, 0, 0), 16, Region::Europe);
        db.add_prefix(Ipv4Addr::new(10, 1, 2, 0), 24, Region::Asia);
        assert_eq!(db.lookup(Ipv4Addr::new(10, 9, 9, 9)), Region::NorthAmerica);
        assert_eq!(db.lookup(Ipv4Addr::new(10, 1, 9, 9)), Region::Europe);
        assert_eq!(db.lookup(Ipv4Addr::new(10, 1, 2, 3)), Region::Asia);
    }

    #[test]
    fn unknown_is_other() {
        let db = GeoDb::new();
        assert_eq!(db.lookup(Ipv4Addr::new(1, 2, 3, 4)), Region::Other);
    }

    #[test]
    fn synthetic_resolves_known_blocks() {
        let db = GeoDb::synthetic();
        assert_eq!(db.lookup(Ipv4Addr::new(24, 5, 6, 7)), Region::NorthAmerica);
        assert_eq!(db.lookup(Ipv4Addr::new(82, 5, 6, 7)), Region::Europe);
        assert_eq!(db.lookup(Ipv4Addr::new(202, 5, 6, 7)), Region::Asia);
        assert_eq!(db.lookup(Ipv4Addr::new(200, 5, 6, 7)), Region::Other);
        // Unallocated space resolves to Other as well.
        assert_eq!(db.lookup(Ipv4Addr::new(140, 5, 6, 7)), Region::Other);
    }

    #[test]
    fn allocator_round_trips_through_lookup() {
        let db = GeoDb::synthetic();
        let alloc = AddressAllocator::new(&db);
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for region in Region::ALL {
            for _ in 0..200 {
                let ip = alloc.sample(region, &mut rng);
                assert_eq!(db.lookup(ip), region, "allocated {ip} for {region}");
            }
        }
    }

    #[test]
    fn allocator_addresses_are_diverse() {
        let db = GeoDb::synthetic();
        let alloc = AddressAllocator::new(&db);
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            seen.insert(alloc.sample(Region::NorthAmerica, &mut rng));
        }
        assert!(seen.len() > 990, "only {} distinct addresses", seen.len());
    }

    #[test]
    fn serde_round_trip() {
        let db = GeoDb::synthetic();
        let s = serde_json::to_string(&db).unwrap();
        let back: GeoDb = serde_json::from_str(&s).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    #[should_panic(expected = "prefix length out of range")]
    fn rejects_overlong_prefix() {
        let mut db = GeoDb::new();
        db.add_prefix(Ipv4Addr::new(1, 2, 3, 4), 33, Region::Other);
    }
}
