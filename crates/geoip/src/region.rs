//! The paper's geographic region classification.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Geographic region of a peer, at the granularity the paper characterizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Region {
    /// North America (≈60–80 % of peers depending on time of day).
    NorthAmerica,
    /// Europe (≈6–20 %).
    Europe,
    /// Asia (≈4–13 %).
    Asia,
    /// Other continents or unresolvable addresses (≈5–10 %).
    Other,
}

impl Region {
    /// The three characterized regions, in the paper's order.
    pub const CHARACTERIZED: [Region; 3] = [Region::NorthAmerica, Region::Europe, Region::Asia];

    /// All four classes including the residual.
    pub const ALL: [Region; 4] = [
        Region::NorthAmerica,
        Region::Europe,
        Region::Asia,
        Region::Other,
    ];

    /// Short ASCII code used in trace records and reports.
    pub fn code(self) -> &'static str {
        match self {
            Region::NorthAmerica => "NA",
            Region::Europe => "EU",
            Region::Asia => "AS",
            Region::Other => "OT",
        }
    }

    /// Full display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Region::NorthAmerica => "North America",
            Region::Europe => "Europe",
            Region::Asia => "Asia",
            Region::Other => "Other",
        }
    }

    /// Parse a region code (as produced by [`Region::code`]).
    pub fn from_code(code: &str) -> Option<Region> {
        match code {
            "NA" => Some(Region::NorthAmerica),
            "EU" => Some(Region::Europe),
            "AS" => Some(Region::Asia),
            "OT" => Some(Region::Other),
            _ => None,
        }
    }

    /// Representative UTC offset (hours) of the region's population center,
    /// used by the diurnal model. The measurement node is in Dortmund,
    /// Germany (UTC+1, matching the trace period's CET).
    pub fn utc_offset_hours(self) -> i32 {
        match self {
            Region::NorthAmerica => -6, // population-weighted US/Canada
            Region::Europe => 1,
            Region::Asia => 8,
            Region::Other => 0,
        }
    }

    /// Index into dense per-region arrays.
    pub fn index(self) -> usize {
        match self {
            Region::NorthAmerica => 0,
            Region::Europe => 1,
            Region::Asia => 2,
            Region::Other => 3,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for r in Region::ALL {
            assert_eq!(Region::from_code(r.code()), Some(r));
        }
        assert_eq!(Region::from_code("XX"), None);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; 4];
        for r in Region::ALL {
            assert!(!seen[r.index()]);
            seen[r.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn characterized_excludes_other() {
        assert!(!Region::CHARACTERIZED.contains(&Region::Other));
        assert_eq!(Region::CHARACTERIZED.len(), 3);
    }

    #[test]
    fn display_names() {
        assert_eq!(Region::NorthAmerica.to_string(), "North America");
        assert_eq!(Region::Asia.code(), "AS");
    }
}
