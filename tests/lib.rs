//! Shared helpers for the cross-crate integration tests.

use behavior::PopulationConfig;

/// A medium-sized population config shared by the integration tests:
/// large enough for stable statistics, small enough for CI turnaround.
pub fn it_population() -> PopulationConfig {
    PopulationConfig {
        seed: 20_040_315, // the trace start date, 2004-03-15
        days: 0.5,
        sessions_per_day: 16_000.0,
        ..PopulationConfig::default()
    }
}
