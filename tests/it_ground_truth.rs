//! Ground-truth validation: the filter rules must recover exactly the
//! user-generated behavior the population model injected.
//!
//! The behavior crate tags every planned query with its
//! [`behavior::QueryOrigin`]; this test plans sessions directly (no
//! network in between) and checks each rule against its target origin.

use behavior::{
    PlannedQuery, QueryOrigin, SessionKind, SessionPlan, SessionPlanner, Vocabulary,
    VocabularyConfig,
};
use geoip::Region;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn planner() -> SessionPlanner {
    let cfg = VocabularyConfig {
        daily_sizes: [600, 560, 90, 30, 3, 3, 2],
        n_days: 3,
        ..VocabularyConfig::default()
    };
    SessionPlanner::paper_default(Arc::new(Vocabulary::build(99, cfg)))
}

/// Run the rule-1/2 logic of the analysis filter directly over a plan's
/// queries (arrival order), returning which survive.
fn survives_rules12(queries: &[PlannedQuery]) -> Vec<bool> {
    let mut seen = std::collections::HashSet::new();
    queries
        .iter()
        .map(|q| {
            let key = q.text.canonical();
            if q.sha1.is_some() && key.is_empty() {
                return false; // rule 1
            }
            seen.insert(key) // rule 2: false on repeat
        })
        .collect()
}

#[test]
fn rule1_removes_exactly_sha1_requeries() {
    let p = planner();
    let mut rng = StdRng::seed_from_u64(1);
    let mut sha1_total = 0;
    for i in 0..4_000 {
        let plan = p.plan(0, 20, Region::NorthAmerica, &mut rng);
        let surv = survives_rules12(&plan.queries);
        for (q, s) in plan.queries.iter().zip(&surv) {
            if q.origin == QueryOrigin::AutoSha1 {
                sha1_total += 1;
                assert!(!s, "session {i}: SHA1 re-query survived rule 1");
            }
        }
    }
    assert!(
        sha1_total > 200,
        "model generated too little rule-1 traffic"
    );
}

#[test]
fn rule2_removes_exactly_auto_repeats() {
    let p = planner();
    let mut rng = StdRng::seed_from_u64(2);
    let mut repeats = 0;
    let mut users_lost = 0;
    let mut users_total = 0;
    for _ in 0..4_000 {
        let plan = p.plan(0, 20, Region::NorthAmerica, &mut rng);
        let surv = survives_rules12(&plan.queries);
        for (q, s) in plan.queries.iter().zip(&surv) {
            match q.origin {
                QueryOrigin::AutoRepeat => {
                    repeats += 1;
                    assert!(!s, "auto-repeat survived rule 2");
                }
                QueryOrigin::User => {
                    users_total += 1;
                    if !s {
                        users_lost += 1;
                    }
                }
                _ => {}
            }
        }
    }
    assert!(repeats > 500, "model generated too little rule-2 traffic");
    // User queries occasionally repeat a keyword set by chance (Zipf head
    // collisions) — the false-positive rate must stay small.
    let fp = users_lost as f64 / users_total as f64;
    assert!(fp < 0.05, "rule 2 removed {fp:.3} of genuine user queries");
}

#[test]
fn rule3_targets_quick_sessions() {
    let p = planner();
    let mut rng = StdRng::seed_from_u64(3);
    let mut quick = 0;
    let mut long_user_sessions_under_64 = 0;
    for _ in 0..6_000 {
        let plan = p.plan(0, 20, Region::Europe, &mut rng);
        let d = plan.duration.as_secs_f64();
        match plan.kind {
            SessionKind::Quick => {
                quick += 1;
                assert!(d < 64.0, "quick session lasted {d}");
            }
            SessionKind::Passive | SessionKind::Active => {
                if d < 64.0 {
                    long_user_sessions_under_64 += 1;
                }
            }
        }
    }
    // ≈70 % of sessions are quick (§3.3).
    assert!((3_600..=4_800).contains(&quick), "quick sessions: {quick}");
    // Passive sessions are floor-truncated at 64 s; only rare very short
    // *active* sessions can dip below the boundary.
    assert!(
        long_user_sessions_under_64 < 120,
        "{long_user_sessions_under_64} user sessions under 64 s"
    );
}

#[test]
fn rules45_target_burst_and_periodic_traffic() {
    let p = planner();
    let mut rng = StdRng::seed_from_u64(4);
    let mut burst_gaps_subsecond = 0;
    let mut burst_total = 0;
    let mut periodic_trains = 0;
    for _ in 0..4_000 {
        let plan = p.plan(0, 13, Region::Asia, &mut rng);
        // Bursts: consecutive AutoBurst queries are spaced < 1 s (rule 4's
        // detection window).
        let bursts: Vec<&PlannedQuery> = plan
            .queries
            .iter()
            .filter(|q| q.origin == QueryOrigin::AutoBurst)
            .collect();
        for w in bursts.windows(2) {
            burst_total += 1;
            let gap = w[1].offset.as_secs_f64() - w[0].offset.as_secs_f64();
            if gap < 1.0 {
                burst_gaps_subsecond += 1;
            }
        }
        // Periodic trains: identical gaps (rule 5's detection window).
        let periodic: Vec<&PlannedQuery> = plan
            .queries
            .iter()
            .filter(|q| q.origin == QueryOrigin::AutoPeriodic)
            .collect();
        if periodic.len() >= 3 {
            let g1 = periodic[1].offset.as_millis() - periodic[0].offset.as_millis();
            let g2 = periodic[2].offset.as_millis() - periodic[1].offset.as_millis();
            assert_eq!(g1, g2, "periodic train gaps must be identical");
            periodic_trains += 1;
        }
    }
    assert!(burst_total > 500, "too little burst traffic: {burst_total}");
    let frac = burst_gaps_subsecond as f64 / burst_total as f64;
    assert!(frac > 0.9, "burst gaps should be sub-second: {frac}");
    assert!(
        periodic_trains > 10,
        "too few periodic trains: {periodic_trains}"
    );
}

#[test]
fn user_query_counts_match_table_a2_shape() {
    let p = planner();
    let mut rng = StdRng::seed_from_u64(5);
    let mut counts = Vec::new();
    for _ in 0..30_000 {
        let plan = p.plan(0, 20, Region::NorthAmerica, &mut rng);
        if plan.kind == SessionKind::Active {
            counts.push(plan.user_query_count);
        }
    }
    assert!(counts.len() > 1_000);
    // Under the Table A.2 parameters with ceil() discretization,
    // P(count < 5) = Φ((ln 4 + 0.0673)/1.36) ≈ 0.857 — close to the
    // paper's quoted ~80 % (their lognormal fit shows the same gap in
    // Figure A.1(a)).
    let lt5 = counts.iter().filter(|&&c| c < 5).count() as f64 / counts.len() as f64;
    assert!((lt5 - 0.857).abs() < 0.03, "NA <5 fraction {lt5}");
}

#[test]
fn plan_reflects_user_interest_tagging() {
    // Popularity-eligible origins: User, AutoBurst, AutoPeriodic (§3.3).
    assert!(QueryOrigin::User.reflects_user_interest());
    assert!(QueryOrigin::AutoBurst.reflects_user_interest());
    assert!(QueryOrigin::AutoPeriodic.reflects_user_interest());
    assert!(!QueryOrigin::AutoRepeat.reflects_user_interest());
    assert!(!QueryOrigin::AutoSha1.reflects_user_interest());
    assert!(!QueryOrigin::AutoQuick.reflects_user_interest());
}

#[test]
fn session_plan_serializes() {
    let p = planner();
    let mut rng = StdRng::seed_from_u64(6);
    let plan: SessionPlan = p.plan(1, 11, Region::Europe, &mut rng);
    let json = serde_json::to_string(&plan).unwrap();
    let back: SessionPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(plan, back);
}
