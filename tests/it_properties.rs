//! Property-based tests over cross-crate invariants.

use gnutella::message::{Bye, Message, Payload, Pong, Query, QueryHit, QueryHitResult};
use gnutella::wire::{decode_message, encode_message};
use gnutella::{Guid, QueryKey};
use proptest::prelude::*;
use simnet::{EventQueue, SimTime};
use stats::dist::{BodyTail, Continuous, Lognormal, Pareto, Weibull};
use stats::Ecdf;

// ---------- wire codec ----------------------------------------------------

fn arb_guid() -> impl Strategy<Value = Guid> {
    any::<[u8; 16]>().prop_map(Guid)
}

fn arb_text() -> impl Strategy<Value = String> {
    // NUL-free strings (NUL is the wire delimiter, never legal in keywords).
    "[a-zA-Z0-9 äöü.]{0,40}"
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        Just(Payload::Ping),
        (any::<u16>(), any::<[u8; 4]>(), any::<u32>(), any::<u32>()).prop_map(
            |(port, ip, files, kb)| Payload::Pong(Pong {
                port,
                addr: ip.into(),
                shared_files: files,
                shared_kb: kb,
            })
        ),
        (
            any::<u16>(),
            arb_text(),
            proptest::option::of("[A-Z2-7]{8,32}")
        )
            .prop_map(|(speed, text, sha1)| Payload::Query(Query {
                min_speed: speed,
                text: text.into(),
                sha1: sha1.map(|s| format!("urn:sha1:{s}")),
            })),
        (
            any::<u16>(),
            any::<[u8; 4]>(),
            any::<u32>(),
            proptest::collection::vec((any::<u32>(), any::<u32>(), "[a-z0-9 .]{1,24}"), 0..6),
            arb_guid()
        )
            .prop_map(|(port, ip, speed, results, servent)| {
                Payload::QueryHit(QueryHit {
                    port,
                    addr: ip.into(),
                    speed,
                    results: results
                        .into_iter()
                        .map(|(index, size, name)| QueryHitResult { index, size, name })
                        .collect(),
                    servent,
                })
            }),
        (any::<u16>(), "[a-z ]{0,20}")
            .prop_map(|(code, reason)| Payload::Bye(Bye { code, reason })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wire_round_trip(guid in arb_guid(), ttl in 0u8..8, hops in 0u8..8, payload in arb_payload()) {
        let msg = Message { guid, ttl, hops, payload };
        let mut encoded = encode_message(&msg);
        let decoded = decode_message(&mut encoded).unwrap();
        prop_assert_eq!(decoded, msg);
        prop_assert!(encoded.is_empty());
    }

    #[test]
    fn wire_concatenation_preserves_order(msgs in proptest::collection::vec(
        (arb_guid(), arb_payload()).prop_map(|(g, p)| Message { guid: g, ttl: 5, hops: 1, payload: p }),
        1..8
    )) {
        let mut buf = bytes::BytesMut::new();
        for m in &msgs {
            buf.extend_from_slice(&encode_message(m));
        }
        let mut stream = buf.freeze();
        for m in &msgs {
            prop_assert_eq!(&decode_message(&mut stream).unwrap(), m);
        }
        prop_assert!(stream.is_empty());
    }

    // ---------- query identity ---------------------------------------------

    #[test]
    fn query_key_is_order_and_case_insensitive(words in proptest::collection::vec("[a-z]{1,8}", 1..6)) {
        let forward = words.join(" ");
        let mut rev = words.clone();
        rev.reverse();
        let upper = rev.join(" ").to_uppercase();
        prop_assert_eq!(QueryKey::new(&forward), QueryKey::new(&upper));
    }

    // ---------- event queue --------------------------------------------------

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..100_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(t), i);
        }
        let mut prev = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, _, _)) = q.pop() {
            prop_assert!(at >= prev);
            prev = at;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    // ---------- distributions -------------------------------------------------

    #[test]
    fn lognormal_quantile_inverts_cdf(mu in -3.0f64..6.0, sigma in 0.2f64..3.0, p in 0.01f64..0.99) {
        let d = Lognormal::new(mu, sigma).unwrap();
        let x = d.quantile(p);
        prop_assert!((d.cdf(x) - p).abs() < 1e-6);
    }

    #[test]
    fn weibull_quantile_inverts_cdf(alpha in 0.3f64..4.0, lambda in 1e-4f64..1.0, p in 0.01f64..0.99) {
        let d = Weibull::new(alpha, lambda).unwrap();
        let x = d.quantile(p);
        prop_assert!((d.cdf(x) - p).abs() < 1e-6);
    }

    #[test]
    fn pareto_quantile_inverts_cdf(alpha in 0.3f64..4.0, beta in 1.0f64..1_000.0, p in 0.01f64..0.99) {
        let d = Pareto::new(alpha, beta).unwrap();
        let x = d.quantile(p);
        prop_assert!((d.cdf(x) - p).abs() < 1e-6);
    }

    #[test]
    fn body_tail_split_carries_body_weight(
        w in 0.05f64..0.95,
        split in 10.0f64..500.0,
        mu_b in 0.0f64..3.0,
        mu_t in 4.0f64..8.0,
    ) {
        let body = Lognormal::new(mu_b, 1.5).unwrap();
        let tail = Lognormal::new(mu_t, 1.5).unwrap();
        let d = BodyTail::new(body, tail, split, w).unwrap();
        prop_assert!((d.cdf(split) - w).abs() < 1e-9);
        // CDF is monotone across the split.
        prop_assert!(d.cdf(split * 0.5) <= d.cdf(split));
        prop_assert!(d.cdf(split) <= d.cdf(split * 2.0));
    }

    #[test]
    fn ecdf_matches_manual_count(samples in proptest::collection::vec(0.0f64..1_000.0, 1..300), probe in 0.0f64..1_000.0) {
        let e = Ecdf::new(samples.clone()).unwrap();
        let manual = samples.iter().filter(|&&x| x <= probe).count() as f64 / samples.len() as f64;
        prop_assert!((e.cdf(probe) - manual).abs() < 1e-12);
        prop_assert!((e.cdf(probe) + e.ccdf(probe) - 1.0).abs() < 1e-12);
    }

    // ---------- generator invariants -------------------------------------------

    #[test]
    fn generator_stream_is_well_formed(seed in 0u64..500) {
        use p2pq::{GeneratorConfig, WorkloadEvent, WorkloadGenerator, WorkloadModel};
        let model = WorkloadModel::paper_default();
        let gen = WorkloadGenerator::new(
            &model,
            GeneratorConfig {
                n_peers: 10,
                seed,
                fixed_hour: Some(12),
                ..GeneratorConfig::default()
            },
        );
        let mut prev = SimTime::ZERO;
        let mut open = std::collections::HashSet::new();
        for ev in gen.take(400) {
            prop_assert!(ev.at() >= prev);
            prev = ev.at();
            match ev {
                WorkloadEvent::SessionStart { peer, .. } => {
                    prop_assert!(open.insert(peer));
                }
                WorkloadEvent::Query { peer, query, .. } => {
                    prop_assert!(open.contains(&peer));
                    prop_assert!(query.rank >= 1);
                }
                WorkloadEvent::SessionEnd { peer, .. } => {
                    prop_assert!(open.remove(&peer));
                }
            }
        }
    }
}
