//! End-to-end pipeline: simulate → serialize → filter → characterize →
//! calibrate → regenerate.

use analysis::characterize::{interarrival, passive_fraction, queries};
use analysis::filter::apply_filters;
use analysis::popularity::{class_sizes, DailyObservations};
use behavior::run_population;
use geoip::{GeoDb, Region};
use integration_support::it_population;
use p2pq::{calibrate, collect_sessions, GeneratorConfig, WorkloadGenerator};
use simnet::SimTime;
use trace::Trace;

#[test]
fn full_pipeline_closes_the_loop() {
    // 1. Simulate the measured population.
    let trace = run_population(&it_population());
    let stats = trace.stats();
    assert!(stats.direct_connections > 2_000, "population too small");
    assert!(
        stats.query_messages > stats.hop1_queries,
        "no relayed traffic"
    );

    // 2. The trace round-trips through the JSONL interchange format.
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).expect("serialize");
    let back = Trace::read_jsonl(buf.as_slice()).expect("parse");
    assert_eq!(trace, back);

    // 3. Filter.
    let db = GeoDb::synthetic();
    let ft = apply_filters(&trace, &db);
    let r = &ft.report;
    // Table 2 arithmetic must balance exactly.
    assert_eq!(
        r.raw_queries,
        r.rule1_removed + r.rule2_removed + r.rule3_queries_removed + r.final_queries
    );
    assert_eq!(
        r.final_queries,
        r.rule4_flagged + r.rule5_flagged + r.interarrival_queries
    );
    assert_eq!(r.raw_sessions, r.rule3_sessions_removed + r.final_sessions);

    // 4. Characterize: regional orderings the paper reports must hold.
    // Passive fractions ≈ 80 % everywhere (Figure 4).
    for region in Region::CHARACTERIZED {
        let p = passive_fraction::passive_fraction_by_hour(&ft, region);
        assert!(
            (0.70..=0.95).contains(&p.overall),
            "{region}: passive {}",
            p.overall
        );
    }
    // Europe issues more queries than Asia (Figure 6(a)).
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let eu = queries::query_counts(&ft, Region::Europe);
    let asia = queries::query_counts(&ft, Region::Asia);
    assert!(
        eu.len() > 25 && asia.len() > 10,
        "eu {} asia {}",
        eu.len(),
        asia.len()
    );
    assert!(
        mean(&eu) > mean(&asia),
        "EU {} vs Asia {}",
        mean(&eu),
        mean(&asia)
    );
    // EU interarrivals are shorter than NA's (Figure 8(a)), comparing the
    // below-103 s fraction.
    let frac_below = |r: Region| {
        let s = interarrival::interarrival_samples(&ft, r);
        s.iter().filter(|&&g| g < 103.0).count() as f64 / s.len().max(1) as f64
    };
    assert!(
        frac_below(Region::Europe) > frac_below(Region::NorthAmerica),
        "EU {} vs NA {}",
        frac_below(Region::Europe),
        frac_below(Region::NorthAmerica)
    );

    // 5. Popularity structure: regions issue mostly disjoint queries
    // (Table 3 — intersections are small relative to the region sets).
    let obs = DailyObservations::collect(&ft);
    let sizes = class_sizes(&obs, 0, 1);
    assert!(sizes.na > 50, "NA distinct {}", sizes.na);
    assert!(
        (sizes.na_eu as f64) < 0.25 * sizes.na as f64,
        "NA∩EU {} vs NA {}",
        sizes.na_eu,
        sizes.na
    );

    // 6. Calibrate and regenerate.
    let (model, report) = calibrate(&ft);
    assert!(
        report.fitted.len() >= 10,
        "too few fitted fields:\n{}",
        report.render()
    );
    let mut generator = WorkloadGenerator::new(
        &model,
        GeneratorConfig {
            n_peers: 200,
            seed: 31,
            fixed_hour: Some(20),
            ..GeneratorConfig::default()
        },
    );
    let events = generator.events_until(SimTime::from_secs(6 * 3600));
    let synthetic = collect_sessions(events.iter().copied());
    assert!(synthetic.len() > 500);

    // The regenerated passive fraction tracks the measured one.
    let measured_passive =
        ft.sessions.iter().filter(|s| s.is_passive()).count() as f64 / ft.sessions.len() as f64;
    let synth_passive =
        synthetic.iter().filter(|s| s.is_passive()).count() as f64 / synthetic.len() as f64;
    assert!(
        (measured_passive - synth_passive).abs() < 0.08,
        "measured {measured_passive} vs synthetic {synth_passive}"
    );

    // And the regenerated NA query-count distribution tracks the measured
    // one at the paper's <5-query anchor.
    let lt5 = |counts: &[f64]| {
        counts.iter().filter(|&&c| c < 5.0).count() as f64 / counts.len().max(1) as f64
    };
    let m_na = queries::query_counts(&ft, Region::NorthAmerica);
    let s_na: Vec<f64> = synthetic
        .iter()
        .filter(|s| s.region == Region::NorthAmerica && !s.is_passive())
        .map(|s| s.query_times.len() as f64)
        .collect();
    assert!(
        (lt5(&m_na) - lt5(&s_na)).abs() < 0.10,
        "measured lt5 {} vs synthetic {}",
        lt5(&m_na),
        lt5(&s_na)
    );
}

#[test]
fn trace_is_deterministic_across_runs() {
    let a = run_population(&it_population_small());
    let b = run_population(&it_population_small());
    assert_eq!(a, b);
}

fn it_population_small() -> behavior::PopulationConfig {
    behavior::PopulationConfig {
        days: 0.08,
        sessions_per_day: 3_000.0,
        ..it_population()
    }
}
